//! Word-structured datapath building blocks.
//!
//! Each block instantiates one multi-bit register ("word") with realistic
//! next-state logic — counters, shift registers, loadable registers,
//! accumulators, LFSRs — the structures that word-level reverse engineering
//! aims to recover. Blocks return the flip-flop indices they created, which
//! become the ground-truth word labels.

use rand::Rng;
use rebert_netlist::{GateType, NetId, Netlist};

/// Low-level helper: 2:1 mux as a single `MUX` gate.
pub fn mux2(nl: &mut Netlist, sel: NetId, a: NetId, b: NetId, name: &str) -> NetId {
    nl.add_gate_new_net(GateType::Mux, vec![sel, a, b], name)
        .expect("fresh net")
}

/// Low-level helper: ripple-carry adder `a + b` (no carry-in), returning
/// the sum bits. `a` and `b` must have equal width ≥ 1.
///
/// # Panics
///
/// Panics if the widths differ or are zero.
pub fn ripple_add(nl: &mut Netlist, a: &[NetId], b: &[NetId], prefix: &str) -> Vec<NetId> {
    assert_eq!(a.len(), b.len(), "adder operand width mismatch");
    assert!(!a.is_empty(), "adder width must be >= 1");
    let mut sum = Vec::with_capacity(a.len());
    let mut carry: Option<NetId> = None;
    for (i, (&ai, &bi)) in a.iter().zip(b).enumerate() {
        let axb = nl
            .add_gate_new_net(GateType::Xor, vec![ai, bi], format!("{prefix}_axb{i}"))
            .expect("fresh net");
        match carry {
            None => {
                sum.push(axb);
                carry = Some(
                    nl.add_gate_new_net(GateType::And, vec![ai, bi], format!("{prefix}_c{i}"))
                        .expect("fresh net"),
                );
            }
            Some(c) => {
                let s = nl
                    .add_gate_new_net(GateType::Xor, vec![axb, c], format!("{prefix}_s{i}"))
                    .expect("fresh net");
                sum.push(s);
                let t1 = nl
                    .add_gate_new_net(GateType::And, vec![ai, bi], format!("{prefix}_t1_{i}"))
                    .expect("fresh net");
                let t2 = nl
                    .add_gate_new_net(GateType::And, vec![axb, c], format!("{prefix}_t2_{i}"))
                    .expect("fresh net");
                carry = Some(
                    nl.add_gate_new_net(GateType::Or, vec![t1, t2], format!("{prefix}_c{i}"))
                        .expect("fresh net"),
                );
            }
        }
    }
    sum
}

/// Low-level helper: equality comparator over equal-width vectors —
/// an AND reduction of per-bit XNORs.
///
/// # Panics
///
/// Panics if widths differ or are zero.
pub fn eq_comparator(nl: &mut Netlist, a: &[NetId], b: &[NetId], prefix: &str) -> NetId {
    assert_eq!(a.len(), b.len(), "comparator width mismatch");
    assert!(!a.is_empty());
    let mut acc: Option<NetId> = None;
    for (i, (&ai, &bi)) in a.iter().zip(b).enumerate() {
        let eq = nl
            .add_gate_new_net(GateType::Xnor, vec![ai, bi], format!("{prefix}_eq{i}"))
            .expect("fresh net");
        acc = Some(match acc {
            None => eq,
            Some(prev) => nl
                .add_gate_new_net(GateType::And, vec![prev, eq], format!("{prefix}_and{i}"))
                .expect("fresh net"),
        });
    }
    acc.expect("width >= 1")
}

/// The family of a datapath block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// Binary up-counter with enable.
    Counter,
    /// Counter that resets when it reaches all-ones.
    ModCounter,
    /// Serial-in shift register with enable.
    ShiftReg,
    /// Parallel-load register (load/hold mux per bit).
    LoadReg,
    /// Accumulator: adds a data word into the register when enabled.
    Accumulator,
    /// Fibonacci LFSR.
    Lfsr,
    /// Gray-code counter (successive states differ in one bit).
    GrayCounter,
    /// Johnson (twisted-ring) counter.
    JohnsonCounter,
    /// Up/down counter: direction selected by the load control.
    UpDownCounter,
    /// Toggle register: each bit independently toggles when its data
    /// source is high and the block is enabled.
    ToggleReg,
}

/// All block kinds, used for seeded round-robin selection.
pub const ALL_BLOCK_KINDS: [BlockKind; 10] = [
    BlockKind::Counter,
    BlockKind::ModCounter,
    BlockKind::ShiftReg,
    BlockKind::LoadReg,
    BlockKind::Accumulator,
    BlockKind::Lfsr,
    BlockKind::GrayCounter,
    BlockKind::JohnsonCounter,
    BlockKind::UpDownCounter,
    BlockKind::ToggleReg,
];

/// Wiring context a block needs: control signals and candidate data
/// sources produced earlier in the build.
#[derive(Debug, Clone)]
pub struct BlockCtx {
    /// An enable-style control net.
    pub enable: NetId,
    /// A load-style control net (may equal `enable`).
    pub load: NetId,
    /// Nets usable as per-bit data inputs (PIs and earlier words' outputs).
    pub data_pool: Vec<NetId>,
    /// Whether to apply a per-block random flavor decoration to control/data
    /// feeds (on for the benchmark generator; off for unit tests that
    /// check exact block semantics).
    pub decorate: bool,
}

/// The result of instantiating a block.
#[derive(Debug, Clone)]
pub struct BuiltBlock {
    /// Flip-flop indices created, in bit order (LSB first).
    pub ff_indices: Vec<usize>,
    /// The block's state-output nets (`q`), LSB first.
    pub q: Vec<NetId>,
}

/// A per-block "flavor": a small random decoration expression applied to
/// every data/enable feed of the block.
///
/// Real registers differ in the upstream logic that feeds them; after the
/// tokenizer generalizes leaf names to `X`, that upstream *shape* is the
/// only thing distinguishing two same-kind registers. The flavor is
/// sampled **once per block**, so all bits of a word share it (the
/// within-word signature stays consistent) while different block
/// instances get different shapes (the across-word signal).
#[derive(Debug, Clone)]
struct Flavor {
    /// Gate chain applied to each feed, innermost first.
    gates: Vec<GateType>,
    /// Fixed second operands for the binary stages.
    operands: Vec<NetId>,
}

impl Flavor {
    fn sample<R: Rng>(rng: &mut R, pool: &[NetId]) -> Flavor {
        const CHOICES: [GateType; 7] = [
            GateType::And,
            GateType::Or,
            GateType::Nand,
            GateType::Nor,
            GateType::Xor,
            GateType::Xnor,
            GateType::Not,
        ];
        let depth = rng.gen_range(1..=3);
        let gates: Vec<GateType> = (0..depth)
            .map(|_| CHOICES[rng.gen_range(0..CHOICES.len())])
            .collect();
        let operands: Vec<NetId> = gates
            .iter()
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .collect();
        Flavor { gates, operands }
    }

    /// Applies the decoration chain to `base`, creating fresh nets under
    /// `prefix`.
    fn apply(&self, nl: &mut Netlist, base: NetId, prefix: &str) -> NetId {
        let mut cur = base;
        for (si, (&g, &op)) in self.gates.iter().zip(&self.operands).enumerate() {
            cur = match g {
                GateType::Not => nl
                    .add_gate_new_net(g, vec![cur], format!("{prefix}_f{si}"))
                    .expect("fresh net"),
                _ => nl
                    .add_gate_new_net(g, vec![cur, op], format!("{prefix}_f{si}"))
                    .expect("fresh net"),
            };
        }
        cur
    }
}

/// Instantiates `kind` with `width` bits named under `prefix`.
///
/// Creates `width` flip-flops, realistic next-state logic, and returns the
/// created flip-flop indices (ground-truth word members).
///
/// # Panics
///
/// Panics if `width == 0` or the context's `data_pool` is empty.
pub fn build_block<R: Rng>(
    nl: &mut Netlist,
    kind: BlockKind,
    width: usize,
    ctx: &BlockCtx,
    rng: &mut R,
    prefix: &str,
) -> BuiltBlock {
    assert!(width > 0, "block width must be positive");
    assert!(!ctx.data_pool.is_empty(), "data pool must not be empty");

    // Pre-create q nets so next-state logic can reference them.
    let q: Vec<NetId> = (0..width)
        .map(|i| nl.add_net(format!("{prefix}_q{i}")))
        .collect();
    let pick = |rng: &mut R, pool: &[NetId]| pool[rng.gen_range(0..pool.len())];

    // Per-block flavor: consistent within the word, distinct across block
    // instances (see [`Flavor`]). Identity when decoration is off.
    let flavor = ctx.decorate.then(|| Flavor::sample(rng, &ctx.data_pool));
    let decorate = |nl: &mut Netlist, base: NetId, tag: &str| -> NetId {
        match &flavor {
            Some(f) => f.apply(nl, base, tag),
            None => base,
        }
    };
    let enable = decorate(nl, ctx.enable, &format!("{prefix}_en"));
    let load = decorate(nl, ctx.load, &format!("{prefix}_ld"));

    let d: Vec<NetId> = match kind {
        BlockKind::Counter => {
            // d[i] = q[i] XOR carry[i]; carry[0] = enable.
            let mut carry = enable;
            let mut d = Vec::with_capacity(width);
            for (i, &qi) in q.iter().enumerate().take(width) {
                let di = nl
                    .add_gate_new_net(GateType::Xor, vec![qi, carry], format!("{prefix}_d{i}"))
                    .expect("fresh net");
                d.push(di);
                if i + 1 < width {
                    carry = nl
                        .add_gate_new_net(GateType::And, vec![carry, qi], format!("{prefix}_cy{i}"))
                        .expect("fresh net");
                }
            }
            d
        }
        BlockKind::ModCounter => {
            // Like Counter but next state is gated to zero when q is all-ones.
            let mut allq = q[0];
            for (i, &qi) in q.iter().enumerate().skip(1) {
                allq = nl
                    .add_gate_new_net(GateType::And, vec![allq, qi], format!("{prefix}_all{i}"))
                    .expect("fresh net");
            }
            let keep = nl
                .add_gate_new_net(GateType::Not, vec![allq], format!("{prefix}_keep"))
                .expect("fresh net");
            let mut carry = enable;
            let mut d = Vec::with_capacity(width);
            for (i, &qi) in q.iter().enumerate().take(width) {
                let next = nl
                    .add_gate_new_net(GateType::Xor, vec![qi, carry], format!("{prefix}_n{i}"))
                    .expect("fresh net");
                let di = nl
                    .add_gate_new_net(GateType::And, vec![next, keep], format!("{prefix}_d{i}"))
                    .expect("fresh net");
                d.push(di);
                if i + 1 < width {
                    carry = nl
                        .add_gate_new_net(GateType::And, vec![carry, qi], format!("{prefix}_cy{i}"))
                        .expect("fresh net");
                }
            }
            d
        }
        BlockKind::ShiftReg => {
            let serial_raw = pick(rng, &ctx.data_pool);
            let serial = decorate(nl, serial_raw, &format!("{prefix}_ser"));
            (0..width)
                .map(|i| {
                    let src = if i == 0 { serial } else { q[i - 1] };
                    mux2(nl, enable, q[i], src, &format!("{prefix}_d{i}"))
                })
                .collect()
        }
        BlockKind::LoadReg => (0..width)
            .map(|i| {
                let raw = pick(rng, &ctx.data_pool);
                let data = decorate(nl, raw, &format!("{prefix}_dd{i}"));
                mux2(nl, load, q[i], data, &format!("{prefix}_d{i}"))
            })
            .collect(),
        BlockKind::Accumulator => {
            let data: Vec<NetId> = (0..width)
                .map(|i| {
                    let raw = pick(rng, &ctx.data_pool);
                    decorate(nl, raw, &format!("{prefix}_dd{i}"))
                })
                .collect();
            let sum = ripple_add(nl, &q, &data, prefix);
            (0..width)
                .map(|i| mux2(nl, enable, q[i], sum[i], &format!("{prefix}_d{i}")))
                .collect()
        }
        BlockKind::GrayCounter => {
            // Textbook Gray counter: with P = parity(q),
            //   T[0]     = !P
            //   T[i]     = P ∧ q[i−1] ∧ (q[i−2..0] = 0)      (0 < i < n−1)
            //   T[n−1]   = P ∧ (q[n−3..0] = 0)
            // each toggle gated by the enable.
            let mut parity = q[0];
            for (i, &qi) in q.iter().enumerate().skip(1) {
                parity = nl
                    .add_gate_new_net(GateType::Xor, vec![parity, qi], format!("{prefix}_p{i}"))
                    .expect("fresh net");
            }
            let not_parity = nl
                .add_gate_new_net(GateType::Not, vec![parity], format!("{prefix}_np"))
                .expect("fresh net");
            // low_zero[i] = AND_{j<i} NOT q[j]; computed incrementally.
            let mut low_zero: Vec<Option<NetId>> = vec![None; width + 1];
            for i in 1..=width {
                let nq = nl
                    .add_gate_new_net(GateType::Not, vec![q[i - 1]], format!("{prefix}_nz{i}"))
                    .expect("fresh net");
                low_zero[i] = Some(match low_zero[i - 1] {
                    None => nq,
                    Some(prev) => nl
                        .add_gate_new_net(GateType::And, vec![prev, nq], format!("{prefix}_lz{i}"))
                        .expect("fresh net"),
                });
            }
            (0..width)
                .map(|i| {
                    let toggle = if i == 0 {
                        not_parity
                    } else if i < width - 1 {
                        let base = nl
                            .add_gate_new_net(
                                GateType::And,
                                vec![parity, q[i - 1]],
                                format!("{prefix}_tq{i}"),
                            )
                            .expect("fresh net");
                        match (i >= 2).then(|| low_zero[i - 1].expect("built")) {
                            Some(lz) => nl
                                .add_gate_new_net(
                                    GateType::And,
                                    vec![base, lz],
                                    format!("{prefix}_t{i}"),
                                )
                                .expect("fresh net"),
                            None => base,
                        }
                    } else {
                        // MSB: parity ∧ (q[n−3..0] = 0); for n ≤ 2 the
                        // zero-condition is vacuous.
                        match (width >= 3).then(|| low_zero[width - 2].expect("built")) {
                            Some(lz) => nl
                                .add_gate_new_net(
                                    GateType::And,
                                    vec![parity, lz],
                                    format!("{prefix}_t{i}"),
                                )
                                .expect("fresh net"),
                            None => parity,
                        }
                    };
                    let gated = nl
                        .add_gate_new_net(
                            GateType::And,
                            vec![toggle, enable],
                            format!("{prefix}_g{i}"),
                        )
                        .expect("fresh net");
                    nl.add_gate_new_net(GateType::Xor, vec![q[i], gated], format!("{prefix}_d{i}"))
                        .expect("fresh net")
                })
                .collect()
        }
        BlockKind::JohnsonCounter => {
            let nq_last = nl
                .add_gate_new_net(GateType::Not, vec![q[width - 1]], format!("{prefix}_fb"))
                .expect("fresh net");
            (0..width)
                .map(|i| {
                    let src = if i == 0 { nq_last } else { q[i - 1] };
                    mux2(nl, enable, q[i], src, &format!("{prefix}_d{i}"))
                })
                .collect()
        }
        BlockKind::UpDownCounter => {
            // Direction from the load control: up when low, down when high.
            let mut up_carry = enable;
            let mut down_borrow = enable;
            let mut d = Vec::with_capacity(width);
            for (i, &qi) in q.iter().enumerate().take(width) {
                let up_next = nl
                    .add_gate_new_net(GateType::Xor, vec![qi, up_carry], format!("{prefix}_u{i}"))
                    .expect("fresh net");
                let down_next = nl
                    .add_gate_new_net(
                        GateType::Xor,
                        vec![qi, down_borrow],
                        format!("{prefix}_w{i}"),
                    )
                    .expect("fresh net");
                d.push(mux2(
                    nl,
                    load,
                    up_next,
                    down_next,
                    &format!("{prefix}_d{i}"),
                ));
                if i + 1 < width {
                    up_carry = nl
                        .add_gate_new_net(
                            GateType::And,
                            vec![up_carry, qi],
                            format!("{prefix}_uc{i}"),
                        )
                        .expect("fresh net");
                    let nq = nl
                        .add_gate_new_net(GateType::Not, vec![qi], format!("{prefix}_nq{i}"))
                        .expect("fresh net");
                    down_borrow = nl
                        .add_gate_new_net(
                            GateType::And,
                            vec![down_borrow, nq],
                            format!("{prefix}_db{i}"),
                        )
                        .expect("fresh net");
                }
            }
            d
        }
        BlockKind::ToggleReg => (0..width)
            .map(|i| {
                let raw = pick(rng, &ctx.data_pool);
                let data = decorate(nl, raw, &format!("{prefix}_dd{i}"));
                let gated = nl
                    .add_gate_new_net(GateType::And, vec![data, enable], format!("{prefix}_g{i}"))
                    .expect("fresh net");
                nl.add_gate_new_net(GateType::Xor, vec![q[i], gated], format!("{prefix}_d{i}"))
                    .expect("fresh net")
            })
            .collect(),
        BlockKind::Lfsr => {
            // Fibonacci LFSR: feedback is XOR of the last stage and one tap.
            let tap = if width >= 2 {
                rng.gen_range(0..width - 1)
            } else {
                0
            };
            let fb = if width >= 2 {
                nl.add_gate_new_net(
                    GateType::Xor,
                    vec![q[width - 1], q[tap]],
                    format!("{prefix}_fb"),
                )
                .expect("fresh net")
            } else {
                nl.add_gate_new_net(GateType::Not, vec![q[0]], format!("{prefix}_fb"))
                    .expect("fresh net")
            };
            (0..width)
                .map(|i| {
                    let src = if i == 0 { fb } else { q[i - 1] };
                    // Gate with enable for realism.
                    mux2(nl, enable, q[i], src, &format!("{prefix}_d{i}"))
                })
                .collect()
        }
    };

    let mut ff_indices = Vec::with_capacity(width);
    for i in 0..width {
        let id = nl.add_dff(d[i], q[i]).expect("q nets are undriven");
        ff_indices.push(id.index());
    }
    BuiltBlock { ff_indices, q }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use rebert_netlist::Simulator;

    fn ctx(nl: &mut Netlist) -> BlockCtx {
        let en = nl.add_input("en");
        let load = nl.add_input("load");
        let d0 = nl.add_input("din0");
        let d1 = nl.add_input("din1");
        BlockCtx {
            enable: en,
            load,
            data_pool: vec![d0, d1],
            decorate: false,
        }
    }

    #[test]
    fn counter_counts() {
        let mut nl = Netlist::new("c");
        let c = ctx(&mut nl);
        let mut rng = ChaCha20Rng::seed_from_u64(0);
        let blk = build_block(&mut nl, BlockKind::Counter, 3, &c, &mut rng, "cnt");
        nl.add_output(blk.q[2]);
        assert!(nl.validate().is_ok());
        let mut sim = Simulator::new(&nl).unwrap();
        // inputs: en, load, din0, din1
        for expected in 1..=5u8 {
            sim.step(&[true, false, false, false]);
            let got =
                sim.state()[0] as u8 | (sim.state()[1] as u8) << 1 | (sim.state()[2] as u8) << 2;
            assert_eq!(got, expected % 8);
        }
        // Disabled: holds.
        let before: Vec<bool> = sim.state().to_vec();
        sim.step(&[false, false, false, false]);
        assert_eq!(sim.state(), &before[..]);
    }

    #[test]
    fn mod_counter_wraps_to_zero() {
        let mut nl = Netlist::new("m");
        let c = ctx(&mut nl);
        let mut rng = ChaCha20Rng::seed_from_u64(0);
        let blk = build_block(&mut nl, BlockKind::ModCounter, 2, &c, &mut rng, "mc");
        nl.add_output(blk.q[0]);
        let mut sim = Simulator::new(&nl).unwrap();
        // Counts 0,1,2,3 then back to 0 (all-ones resets).
        let mut seen = Vec::new();
        for _ in 0..5 {
            seen.push(sim.state()[0] as u8 | (sim.state()[1] as u8) << 1);
            sim.step(&[true, false, false, false]);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn shift_register_shifts() {
        let mut nl = Netlist::new("s");
        let mut c = ctx(&mut nl);
        c.data_pool = vec![c.data_pool[0]]; // deterministic serial source
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let blk = build_block(&mut nl, BlockKind::ShiftReg, 3, &c, &mut rng, "sh");
        nl.add_output(blk.q[2]);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.step(&[true, false, true, false]); // shift in 1
        sim.step(&[true, false, false, false]); // shift in 0
        sim.step(&[true, false, true, false]); // shift in 1
        assert_eq!(sim.state(), &[true, false, true]);
    }

    #[test]
    fn load_register_loads_and_holds() {
        let mut nl = Netlist::new("l");
        let mut c = ctx(&mut nl);
        c.data_pool = vec![c.data_pool[0]];
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let blk = build_block(&mut nl, BlockKind::LoadReg, 2, &c, &mut rng, "ld");
        nl.add_output(blk.q[0]);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.step(&[false, true, true, false]); // load=1, din0=1
        assert_eq!(sim.state(), &[true, true]);
        sim.step(&[false, false, false, false]); // hold
        assert_eq!(sim.state(), &[true, true]);
    }

    #[test]
    fn accumulator_accumulates() {
        let mut nl = Netlist::new("a");
        let mut c = ctx(&mut nl);
        c.data_pool = vec![c.data_pool[0]];
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let blk = build_block(&mut nl, BlockKind::Accumulator, 3, &c, &mut rng, "ac");
        nl.add_output(blk.q[0]);
        let mut sim = Simulator::new(&nl).unwrap();
        // data word is din0 replicated on all 3 bits => adds 0b111 = 7 when din0=1.
        // Start 0; add 7 -> 7; add 7 -> 14 mod 8 = 6.
        sim.step(&[true, false, true, false]);
        let v1 = sim.state()[0] as u8 | (sim.state()[1] as u8) << 1 | (sim.state()[2] as u8) << 2;
        assert_eq!(v1, 7);
        sim.step(&[true, false, true, false]);
        let v2 = sim.state()[0] as u8 | (sim.state()[1] as u8) << 1 | (sim.state()[2] as u8) << 2;
        assert_eq!(v2, 6);
    }

    #[test]
    fn lfsr_cycles_nontrivially() {
        let mut nl = Netlist::new("f");
        let c = ctx(&mut nl);
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        let blk = build_block(&mut nl, BlockKind::Lfsr, 4, &c, &mut rng, "lf");
        nl.add_output(blk.q[3]);
        let mut sim = Simulator::new(&nl).unwrap();
        // Seed state non-zero via direct injection and check it evolves.
        sim.set_state(&[true, false, false, false]);
        let s0: Vec<bool> = sim.state().to_vec();
        sim.step(&[true, false, false, false]);
        assert_ne!(sim.state(), &s0[..]);
    }

    #[test]
    fn ripple_add_is_addition() {
        let mut nl = Netlist::new("add");
        let a: Vec<NetId> = (0..3).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NetId> = (0..3).map(|i| nl.add_input(format!("b{i}"))).collect();
        let sum = ripple_add(&mut nl, &a, &b, "s");
        for &s in &sum {
            nl.add_output(s);
        }
        let sim = Simulator::new(&nl).unwrap();
        for x in 0..8u8 {
            for y in 0..8u8 {
                let mut inputs = Vec::new();
                for j in 0..3 {
                    inputs.push((x >> j) & 1 == 1);
                }
                for j in 0..3 {
                    inputs.push((y >> j) & 1 == 1);
                }
                let vals = sim.eval_combinational(&inputs, &[]);
                let got = (0..3).fold(0u8, |acc, j| acc | (vals[sum[j].index()] as u8) << j);
                assert_eq!(got, (x + y) & 7, "{x}+{y}");
            }
        }
    }

    #[test]
    fn eq_comparator_detects_equality() {
        let mut nl = Netlist::new("cmp");
        let a: Vec<NetId> = (0..2).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NetId> = (0..2).map(|i| nl.add_input(format!("b{i}"))).collect();
        let eq = eq_comparator(&mut nl, &a, &b, "e");
        nl.add_output(eq);
        let sim = Simulator::new(&nl).unwrap();
        for x in 0..4u8 {
            for y in 0..4u8 {
                let inputs = vec![x & 1 == 1, x >> 1 & 1 == 1, y & 1 == 1, y >> 1 & 1 == 1];
                let vals = sim.eval_combinational(&inputs, &[]);
                assert_eq!(vals[eq.index()], x == y);
            }
        }
    }
}

#[cfg(test)]
mod new_block_tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use rebert_netlist::Simulator;

    fn ctx(nl: &mut Netlist) -> BlockCtx {
        let en = nl.add_input("en");
        let load = nl.add_input("load");
        let d0 = nl.add_input("din0");
        BlockCtx {
            enable: en,
            load,
            data_pool: vec![d0],
            decorate: false,
        }
    }

    fn state_value(sim: &Simulator<'_>) -> u8 {
        sim.state()
            .iter()
            .enumerate()
            .fold(0u8, |acc, (i, &b)| acc | (b as u8) << i)
    }

    #[test]
    fn gray_counter_visits_all_states_with_hamming_one() {
        let mut nl = Netlist::new("g");
        let c = ctx(&mut nl);
        let mut rng = ChaCha20Rng::seed_from_u64(0);
        let blk = build_block(&mut nl, BlockKind::GrayCounter, 3, &c, &mut rng, "gc");
        nl.add_output(blk.q[0]);
        assert!(nl.validate().is_ok());
        let mut sim = Simulator::new(&nl).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut prev = state_value(&sim);
        seen.insert(prev);
        for _ in 0..8 {
            sim.step(&[true, false, false]);
            let cur = state_value(&sim);
            assert_eq!(
                (prev ^ cur).count_ones(),
                1,
                "gray property {prev:03b}->{cur:03b}"
            );
            seen.insert(cur);
            prev = cur;
        }
        assert_eq!(seen.len(), 8, "full 3-bit gray cycle");
        // Disabled: holds state.
        let hold = state_value(&sim);
        sim.step(&[false, false, false]);
        assert_eq!(state_value(&sim), hold);
    }

    #[test]
    fn johnson_counter_cycles_2n() {
        let mut nl = Netlist::new("j");
        let c = ctx(&mut nl);
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let blk = build_block(&mut nl, BlockKind::JohnsonCounter, 3, &c, &mut rng, "jc");
        nl.add_output(blk.q[2]);
        let mut sim = Simulator::new(&nl).unwrap();
        let start = state_value(&sim);
        let mut period = 0;
        for i in 1..=8 {
            sim.step(&[true, false, false]);
            if state_value(&sim) == start {
                period = i;
                break;
            }
        }
        assert_eq!(period, 6, "Johnson counter period is 2n");
    }

    #[test]
    fn up_down_counter_reverses() {
        let mut nl = Netlist::new("ud");
        let c = ctx(&mut nl);
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let blk = build_block(&mut nl, BlockKind::UpDownCounter, 3, &c, &mut rng, "ud");
        nl.add_output(blk.q[0]);
        let mut sim = Simulator::new(&nl).unwrap();
        // Count up twice (load=0), then down twice (load=1): back to start.
        sim.step(&[true, false, false]);
        sim.step(&[true, false, false]);
        assert_eq!(state_value(&sim), 2);
        sim.step(&[true, true, false]);
        sim.step(&[true, true, false]);
        assert_eq!(state_value(&sim), 0);
        // Down from zero wraps to all-ones.
        sim.step(&[true, true, false]);
        assert_eq!(state_value(&sim), 7);
    }

    #[test]
    fn toggle_register_toggles_on_data() {
        let mut nl = Netlist::new("t");
        let c = ctx(&mut nl);
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let blk = build_block(&mut nl, BlockKind::ToggleReg, 2, &c, &mut rng, "tg");
        nl.add_output(blk.q[0]);
        let mut sim = Simulator::new(&nl).unwrap();
        // en=1, din0=1: every bit toggles (single data source).
        sim.step(&[true, false, true]);
        assert_eq!(sim.state(), &[true, true]);
        sim.step(&[true, false, true]);
        assert_eq!(sim.state(), &[false, false]);
        // din0=0: holds.
        sim.step(&[true, false, false]);
        assert_eq!(sim.state(), &[false, false]);
    }

    #[test]
    fn all_kinds_build_at_every_small_width() {
        for kind in ALL_BLOCK_KINDS {
            for width in 1..=5 {
                let mut nl = Netlist::new("w");
                let c = ctx(&mut nl);
                let mut rng = ChaCha20Rng::seed_from_u64(width as u64);
                let blk = build_block(&mut nl, kind, width, &c, &mut rng, "b");
                assert_eq!(blk.ff_indices.len(), width, "{kind:?}/{width}");
                assert!(nl.validate().is_ok(), "{kind:?}/{width}");
            }
        }
    }
}

#[cfg(test)]
mod flavor_tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    #[test]
    fn decorated_blocks_validate_at_all_kinds() {
        for kind in ALL_BLOCK_KINDS {
            let mut nl = Netlist::new("f");
            let en = nl.add_input("en");
            let load = nl.add_input("load");
            let d0 = nl.add_input("d0");
            let d1 = nl.add_input("d1");
            let ctx = BlockCtx {
                enable: en,
                load,
                data_pool: vec![d0, d1],
                decorate: true,
            };
            let mut rng = ChaCha20Rng::seed_from_u64(9);
            let blk = build_block(&mut nl, kind, 4, &ctx, &mut rng, "b");
            assert_eq!(blk.ff_indices.len(), 4, "{kind:?}");
            assert!(nl.validate().is_ok(), "{kind:?}");
        }
    }

    #[test]
    fn two_same_kind_instances_have_different_shapes() {
        // The reason Flavor exists: two counters in one design must not be
        // structurally identical, otherwise cross-word pairs are
        // indistinguishable after leaf generalization.
        use rebert_netlist::BitTree;
        let mut nl = Netlist::new("two");
        let en = nl.add_input("en");
        let load = nl.add_input("load");
        let d0 = nl.add_input("d0");
        let d1 = nl.add_input("d1");
        let ctx = BlockCtx {
            enable: en,
            load,
            data_pool: vec![d0, d1],
            decorate: true,
        };
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let a = build_block(&mut nl, BlockKind::Counter, 3, &ctx, &mut rng, "a");
        let b = build_block(&mut nl, BlockKind::Counter, 3, &ctx, &mut rng, "b");
        let (bin, _) = rebert_netlist::binarize(&nl);
        let bits = bin.bits();
        let ta = BitTree::extract(&bin, bits[a.ff_indices[0]], 6);
        let tb = BitTree::extract(&bin, bits[b.ff_indices[0]], 6);
        // Compare pre-order gate-type sequences.
        let shape = |t: &BitTree| -> Vec<String> {
            t.preorder()
                .into_iter()
                .map(|i| match &t.nodes()[i as usize] {
                    rebert_netlist::TreeNode::Gate { gtype, .. } => gtype.to_string(),
                    rebert_netlist::TreeNode::Leaf { .. } => "X".into(),
                })
                .collect()
        };
        assert_ne!(
            shape(&ta),
            shape(&tb),
            "flavors must differentiate instances"
        );
    }
}
