//! Assembling a full benchmark circuit from a [`Profile`].
//!
//! The generator builds, in order:
//!
//! 1. a **control FSM** — a state register (itself a ground-truth word)
//!    with random next-state logic over primary inputs and state bits, plus
//!    derived control signals (enables / loads);
//! 2. the remaining **datapath words**, one block each
//!    (see [`crate::blocks`]), wired to control signals, primary inputs,
//!    and the outputs of earlier words (creating realistic cross-word
//!    logic);
//! 3. **glue logic** padding random combinational cones toward the
//!    profile's target gate count (feeding primary outputs only, so the
//!    bits are unaffected);
//! 4. optional **optimization noise**: a light equivalence-preserving gate
//!    rewrite pass (R-Index ≈ 0.05) emulating the per-bit irregularity a
//!    synthesis optimizer introduces.
//!
//! The result carries exact ground-truth [`WordLabels`] by construction.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;
use rebert_netlist::{GateType, NetId, Netlist};
use serde::{Deserialize, Serialize};

use crate::blocks::{build_block, BlockCtx, ALL_BLOCK_KINDS};
use crate::corrupt::corrupt;
use crate::labels::WordLabels;
use crate::profiles::Profile;

/// Knobs for [`generate_with`]. [`generate`] uses `Default`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Probability of the light equivalence-preserving rewrite applied to
    /// each gate after assembly ("synthesis optimization noise").
    /// `0.0` disables the pass.
    pub optimize_noise: f64,
    /// Minimum word width the partitioner aims for (clamped by the
    /// profile's FF budget).
    pub min_word_width: usize,
    /// Maximum word width the partitioner allows.
    pub max_word_width: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            optimize_noise: 0.05,
            min_word_width: 2,
            max_word_width: 32,
        }
    }
}

/// A generated benchmark: the netlist plus its ground-truth word labels.
#[derive(Debug, Clone)]
pub struct GeneratedCircuit {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Ground-truth grouping of flip-flops into words.
    pub labels: WordLabels,
    /// The profile this circuit was generated from.
    pub profile: Profile,
    /// The seed used (for reproducibility records).
    pub seed: u64,
}

/// Generates a benchmark circuit for `profile` with default configuration.
///
/// Deterministic for a fixed `(profile, seed)`.
///
/// # Examples
///
/// ```
/// use rebert_circuits::{generate, Profile};
///
/// let circuit = generate(&Profile::new("demo", 150, 24, 4), 42);
/// assert_eq!(circuit.netlist.dff_count(), 24);
/// assert_eq!(circuit.labels.word_count(), 4);
/// assert!(circuit.netlist.validate().is_ok());
/// ```
pub fn generate(profile: &Profile, seed: u64) -> GeneratedCircuit {
    generate_with(profile, seed, &GeneratorConfig::default())
}

/// Generates a benchmark circuit with explicit configuration.
///
/// # Panics
///
/// Panics if the profile requests more words than flip-flops, or zero
/// words/FFs.
pub fn generate_with(profile: &Profile, seed: u64, cfg: &GeneratorConfig) -> GeneratedCircuit {
    assert!(profile.ffs >= profile.words, "more words than flip-flops");
    assert!(profile.words >= 1 && profile.ffs >= 1, "empty profile");
    let mut rng = ChaCha20Rng::seed_from_u64(seed ^ 0x5eed_c1c0);
    let mut nl = Netlist::new(&profile.name);

    // ----- primary inputs ------------------------------------------------
    let n_pis = (profile.ffs / 6).clamp(4, 40);
    let pis: Vec<NetId> = (0..n_pis).map(|i| nl.add_input(format!("pi{i}"))).collect();

    // ----- word width partition ------------------------------------------
    let widths = partition_widths(profile.ffs, profile.words, cfg, &mut rng);

    // ----- control FSM (word 0) ------------------------------------------
    // The FSM state register is the first word; its width is the first
    // partition entry (clamped to at most 6 for tractable control logic,
    // with the remainder folded into the pool below).
    let mut widths = widths;
    widths.sort_unstable_by(|a, b| b.cmp(a));
    // FSM takes a small width from the partition: pick the last (smallest).
    let fsm_width = *widths.last().expect("at least one word");
    widths.pop();

    let state_q: Vec<NetId> = (0..fsm_width)
        .map(|i| nl.add_net(format!("fsm_s{i}")))
        .collect();
    let mut word_labels: Vec<Vec<usize>> = Vec::with_capacity(profile.words);

    // Random next-state logic: each state bit mixes two sources through a
    // random gate pair.
    let mut fsm_ffs = Vec::with_capacity(fsm_width);
    for (i, &qi) in state_q.iter().enumerate() {
        let a = *pis.choose(&mut rng).expect("pis nonempty");
        let b = state_q[rng.gen_range(0..fsm_width)];
        let g1 = [GateType::And, GateType::Or, GateType::Xor][rng.gen_range(0..3)];
        let g2 = [GateType::Nand, GateType::Nor, GateType::Xnor][rng.gen_range(0..3)];
        let t = nl
            .add_gate_new_net(g1, vec![a, b], format!("fsm_t{i}"))
            .expect("fresh");
        let d = nl
            .add_gate_new_net(g2, vec![t, qi], format!("fsm_d{i}"))
            .expect("fresh");
        let id = nl.add_dff(d, qi).expect("state q undriven");
        fsm_ffs.push(id.index());
    }
    word_labels.push(fsm_ffs);

    // Control signals derived from state bits.
    let n_ctrl = (profile.words / 3).clamp(2, 8);
    let mut ctrls: Vec<NetId> = Vec::with_capacity(n_ctrl);
    for i in 0..n_ctrl {
        let a = state_q[rng.gen_range(0..fsm_width)];
        let b = state_q[rng.gen_range(0..fsm_width)];
        let g = [GateType::And, GateType::Or, GateType::Nand][rng.gen_range(0..3)];
        let c = nl
            .add_gate_new_net(g, vec![a, b], format!("ctrl{i}"))
            .expect("fresh");
        ctrls.push(c);
    }

    // ----- datapath words -------------------------------------------------
    let mut data_pool: Vec<NetId> = pis.clone();
    for (wi, &width) in widths.iter().enumerate() {
        let kind = ALL_BLOCK_KINDS[rng.gen_range(0..ALL_BLOCK_KINDS.len())];
        let ctx = BlockCtx {
            enable: ctrls[rng.gen_range(0..ctrls.len())],
            load: ctrls[rng.gen_range(0..ctrls.len())],
            data_pool: data_pool.clone(),
            decorate: true,
        };
        let built = build_block(&mut nl, kind, width, &ctx, &mut rng, &format!("w{wi}"));
        // Later words may consume this word's outputs (cap the pool so
        // data source choice stays diverse but bounded).
        data_pool.extend(built.q.iter().copied().take(8));
        word_labels.push(built.ff_indices);
    }

    // ----- primary outputs for observability -------------------------------
    // Expose a sample of word outputs.
    for w in word_labels.iter().skip(1).take(6) {
        if let Some(&ff) = w.first() {
            let q = nl.dffs()[ff].q;
            nl.add_output(q);
        }
    }

    // ----- glue logic padding ----------------------------------------------
    pad_glue_logic(&mut nl, profile.target_gates, &mut rng);

    // ----- optimization noise ----------------------------------------------
    let netlist = if cfg.optimize_noise > 0.0 {
        let (noisy, _) = corrupt(
            &nl,
            cfg.optimize_noise,
            seed.wrapping_mul(0x9e37_79b9).wrapping_add(0x7f4a_7c15),
        );
        noisy
    } else {
        nl
    };

    GeneratedCircuit {
        netlist,
        labels: WordLabels::new(word_labels),
        profile: profile.clone(),
        seed,
    }
}

/// Splits `ffs` flip-flops into `words` positive widths within the
/// configured bounds. Deterministic given the RNG state.
fn partition_widths(
    ffs: usize,
    words: usize,
    cfg: &GeneratorConfig,
    rng: &mut ChaCha20Rng,
) -> Vec<usize> {
    let min_w = cfg.min_word_width.max(1);
    let mut widths = vec![min_w.min(ffs / words).max(1); words];
    let mut used: usize = widths.iter().sum();
    assert!(used <= ffs, "partition lower bound exceeds FF budget");
    // Distribute the remainder randomly, respecting max width.
    let mut spins = 0usize;
    while used < ffs {
        let i = rng.gen_range(0..words);
        if widths[i] < cfg.max_word_width {
            widths[i] += 1;
            used += 1;
        }
        spins += 1;
        if spins > ffs * 64 {
            // All words at max width: relax the cap.
            let i = (0..words).min_by_key(|&i| widths[i]).expect("words >= 1");
            widths[i] += 1;
            used += 1;
        }
    }
    widths
}

/// Adds combinational "glue" cones until the gate count approaches
/// `target`. New gates only read existing nets and drive fresh nets (so no
/// cycles and no effect on any bit's function); chain ends become primary
/// outputs.
fn pad_glue_logic(nl: &mut Netlist, target: usize, rng: &mut ChaCha20Rng) {
    const BIN_GATES: [GateType; 6] = [
        GateType::And,
        GateType::Or,
        GateType::Nand,
        GateType::Nor,
        GateType::Xor,
        GateType::Xnor,
    ];
    // All nets are driven by the time glue padding runs, so any existing
    // net is a legal source. New gate outputs are fresh nets: no cycles.
    let mut pool: Vec<NetId> = nl.iter_nets().map(|(id, _)| id).collect();
    let mut glue_idx = 0usize;
    while nl.gate_count() < target {
        // Build a chain of 4–10 gates rooted in random existing nets.
        let chain_len = rng.gen_range(4..=10).min(target - nl.gate_count()).max(1);
        let mut last: Option<NetId> = None;
        for _ in 0..chain_len {
            let a = last.unwrap_or_else(|| pool[rng.gen_range(0..pool.len())]);
            let b = pool[rng.gen_range(0..pool.len())];
            let g = BIN_GATES[rng.gen_range(0..BIN_GATES.len())];
            let out = nl
                .add_gate_new_net(g, vec![a, b], format!("glue{glue_idx}"))
                .expect("fresh");
            glue_idx += 1;
            last = Some(out);
        }
        if let Some(end) = last {
            nl.add_output(end);
            pool.push(end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{itc99_profiles_scaled, profile};

    #[test]
    fn generated_circuit_is_valid_and_sized() {
        let p = Profile::new("demo", 200, 30, 6);
        let c = generate(&p, 7);
        assert!(c.netlist.validate().is_ok());
        assert_eq!(c.netlist.dff_count(), 30);
        assert_eq!(c.labels.word_count(), 6);
        assert_eq!(c.labels.bit_count(), 30);
        assert!(c.netlist.gate_count() >= 200, "glue padding undershoot");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = Profile::new("demo", 150, 24, 5);
        let a = generate(&p, 3);
        let b = generate(&p, 3);
        assert_eq!(a.netlist.gate_count(), b.netlist.gate_count());
        assert_eq!(a.labels, b.labels);
        let c = generate(&p, 4);
        let differs = a.netlist.gate_count() != c.netlist.gate_count() || a.labels != c.labels;
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn labels_cover_all_ffs_exactly_once() {
        let p = Profile::new("demo", 120, 25, 5);
        let c = generate(&p, 11);
        let assign = c.labels.assignment();
        assert_eq!(assign.len(), c.netlist.dff_count());
    }

    #[test]
    fn words_have_reasonable_widths() {
        let p = Profile::new("demo", 300, 64, 8);
        let c = generate(&p, 1);
        for w in c.labels.words() {
            assert!(!w.is_empty());
            assert!(w.len() <= 32);
        }
    }

    #[test]
    fn b03_profile_generates() {
        let p = profile("b03").unwrap();
        let c = generate(&p, 0xB03);
        assert_eq!(c.netlist.dff_count(), 30);
        assert_eq!(c.labels.word_count(), 7);
        assert!(c.netlist.validate().is_ok());
    }

    #[test]
    fn scaled_profiles_all_generate() {
        for p in itc99_profiles_scaled().iter().take(8) {
            let c = generate(p, 99);
            assert!(c.netlist.validate().is_ok(), "{}", p.name);
            assert_eq!(c.netlist.dff_count(), p.ffs, "{}", p.name);
            assert_eq!(c.labels.word_count(), p.words, "{}", p.name);
        }
    }

    #[test]
    fn zero_noise_keeps_gate_structure() {
        let p = Profile::new("demo", 100, 16, 4);
        let cfg = GeneratorConfig {
            optimize_noise: 0.0,
            ..Default::default()
        };
        let c = generate_with(&p, 5, &cfg);
        assert!(c.netlist.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "more words than flip-flops")]
    fn impossible_profile_panics() {
        let p = Profile::new("bad", 10, 3, 5);
        let _ = generate(&p, 0);
    }

    #[test]
    fn partition_respects_budget() {
        let cfg = GeneratorConfig::default();
        let mut rng = ChaCha20Rng::seed_from_u64(0);
        for (ffs, words) in [(30, 7), (121, 22), (1415, 98), (8, 8)] {
            let widths = partition_widths(ffs, words, &cfg, &mut rng);
            assert_eq!(widths.len(), words);
            assert_eq!(widths.iter().sum::<usize>(), ffs);
            assert!(widths.iter().all(|&w| w >= 1));
        }
    }
}
