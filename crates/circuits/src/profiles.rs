//! ITC'99 benchmark profiles (the paper's Table I).
//!
//! The paper evaluates on 12 ITC'99 benchmarks. We cannot reuse the
//! authors' synthesized gate-level mappings (library + synthesis script are
//! unpublished and word ground truth depends on them), so each benchmark is
//! regenerated as a synthetic circuit matching its published profile —
//! gate count, flip-flop count, and word count. Values listed in the paper
//! (`b03`, `b11`, `b17` in full; FF counts for all) are used verbatim;
//! missing gate/word counts are filled with the standard ITC'99 synthesis
//! statistics and a typical ~10–15 bits/word register structure, as
//! documented in `DESIGN.md`.

use serde::{Deserialize, Serialize};

/// Size/structure targets for one generated benchmark.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// Benchmark name (e.g. `"b03"`).
    pub name: String,
    /// Target combinational gate count (approximate; the generator pads
    /// glue logic toward this number).
    pub target_gates: usize,
    /// Exact number of flip-flops (= bits).
    pub ffs: usize,
    /// Exact number of ground-truth words.
    pub words: usize,
}

impl Profile {
    /// Creates a profile.
    pub fn new(name: impl Into<String>, target_gates: usize, ffs: usize, words: usize) -> Self {
        Profile {
            name: name.into(),
            target_gates,
            ffs,
            words,
        }
    }

    /// Returns a copy scaled down by `factor` (gates, FFs and words all
    /// divided, with minimums preserved). Used to keep the largest ITC'99
    /// profiles affordable on small machines.
    pub fn scaled(&self, factor: usize) -> Profile {
        assert!(factor >= 1);
        Profile {
            name: self.name.clone(),
            target_gates: (self.target_gates / factor).max(50),
            ffs: (self.ffs / factor).max(8),
            words: (self.words / factor).max(2),
        }
    }
}

/// The 12 benchmark profiles of Table I, full size.
///
/// `b03`, `b11`, `b17` use the paper's exact numbers; the remaining gate
/// and word counts follow standard ITC'99 synthesis statistics.
pub fn itc99_profiles() -> Vec<Profile> {
    vec![
        Profile::new("b03", 122, 30, 7),
        Profile::new("b04", 480, 66, 12),
        Profile::new("b05", 608, 34, 8),
        Profile::new("b07", 382, 49, 9),
        Profile::new("b08", 168, 21, 5),
        Profile::new("b11", 726, 31, 5),
        Profile::new("b12", 944, 121, 22),
        Profile::new("b13", 289, 53, 11),
        Profile::new("b14", 4233, 245, 26),
        Profile::new("b15", 6931, 449, 42),
        Profile::new("b17", 30777, 1415, 98),
        Profile::new("b18", 49293, 3320, 190),
    ]
}

/// The same 12 profiles with the four largest (`b14`, `b15`, `b17`, `b18`)
/// scaled down so a leave-one-out sweep finishes on a single core. The
/// scale factors (4, 4, 12, 24) keep their *relative* ordering.
pub fn itc99_profiles_scaled() -> Vec<Profile> {
    itc99_profiles()
        .into_iter()
        .map(|p| match p.name.as_str() {
            "b14" | "b15" => p.scaled(4),
            "b17" => p.scaled(12),
            "b18" => p.scaled(24),
            _ => p,
        })
        .collect()
}

/// Looks up a full-size profile by benchmark name.
pub fn profile(name: &str) -> Option<Profile> {
    itc99_profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_profiles_matching_paper_ffs() {
        let ps = itc99_profiles();
        assert_eq!(ps.len(), 12);
        let ffs: Vec<usize> = ps.iter().map(|p| p.ffs).collect();
        assert_eq!(
            ffs,
            vec![30, 66, 34, 49, 21, 31, 121, 53, 245, 449, 1415, 3320]
        );
    }

    #[test]
    fn paper_exact_rows() {
        let b03 = profile("b03").unwrap();
        assert_eq!((b03.target_gates, b03.ffs, b03.words), (122, 30, 7));
        let b11 = profile("b11").unwrap();
        assert_eq!((b11.target_gates, b11.ffs, b11.words), (726, 31, 5));
        let b17 = profile("b17").unwrap();
        assert_eq!((b17.target_gates, b17.ffs, b17.words), (30777, 1415, 98));
    }

    #[test]
    fn scaling_preserves_order_and_minimums() {
        let full = itc99_profiles();
        let scaled = itc99_profiles_scaled();
        for (f, s) in full.iter().zip(&scaled) {
            assert_eq!(f.name, s.name);
            assert!(s.ffs <= f.ffs);
            assert!(s.words >= 2);
        }
        // b17 stays bigger than b14 after scaling.
        let get = |v: &[Profile], n: &str| v.iter().find(|p| p.name == n).unwrap().ffs;
        assert!(get(&scaled, "b17") > get(&scaled, "b14"));
        assert!(get(&scaled, "b18") > get(&scaled, "b17"));
    }

    #[test]
    fn unknown_profile_is_none() {
        assert!(profile("b99").is_none());
    }
}
