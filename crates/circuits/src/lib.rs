//! # rebert-circuits
//!
//! Benchmark-circuit substrate for the ReBERT reproduction: synthetic
//! ITC'99-profile generators with exact ground-truth word labels, and the
//! paper's controlled **R-Index** netlist corruption built on
//! equivalence-verified gate-replacement templates.
//!
//! ## Example: generate and corrupt a benchmark
//!
//! ```
//! use rebert_circuits::{corrupt, generate, profile};
//!
//! let p = profile("b03").expect("known benchmark");
//! let circuit = generate(&p, 42);
//! assert_eq!(circuit.netlist.dff_count(), 30);
//!
//! // Replace ~40% of the gates by equivalent templates.
//! let (corrupted, stats) = corrupt(&circuit.netlist, 0.4, 7);
//! assert!(stats.replaced > 0);
//! assert!(corrupted.validate().is_ok());
//! ```

#![warn(missing_docs)]

mod blocks;
mod corrupt;
mod equiv;
mod generator;
mod labels;
mod profiles;

pub use blocks::{
    build_block, eq_comparator, mux2, ripple_add, BlockCtx, BlockKind, BuiltBlock, ALL_BLOCK_KINDS,
};
pub use corrupt::{corrupt, CorruptStats};
pub use equiv::{templates_for, Template, TemplateRef, TemplateStep, VerifyTemplateError};
pub use generator::{generate, generate_with, GeneratedCircuit, GeneratorConfig};
pub use labels::WordLabels;
pub use profiles::{itc99_profiles, itc99_profiles_scaled, profile, Profile};
