//! Gate-replacement templates and their equivalence verification.
//!
//! The paper's controlled corruption replaces each gate, with probability
//! **R-Index**, by a functionally-equivalent template — e.g.
//! `A = NAND(B, C)` → `A = OR(NOT(B), NOT(C))` (paper §III-A.1). Each
//! [`Template`] here is a tiny straight-line gate program over the original
//! gate's inputs; [`Template::verify`] checks exhaustive truth-table
//! equivalence, and the registry only ever hands out verified templates, so
//! corruption provably never changes circuit function.

use std::fmt;

use rebert_netlist::GateType;

/// A reference to a value inside a [`Template`]: either one of the original
/// gate's inputs or the output of an earlier step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateRef {
    /// The i-th input of the gate being replaced.
    Input(usize),
    /// The output of the i-th step of this template.
    Step(usize),
}

/// One gate instantiation inside a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateStep {
    /// Gate type of this step.
    pub gtype: GateType,
    /// Ordered arguments.
    pub args: Vec<TemplateRef>,
}

/// A functionally-equivalent replacement for a `(gate type, arity)` pair:
/// a straight-line program whose **last step** produces the replacement
/// output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// The gate type this template replaces.
    pub target: GateType,
    /// The input count this template replaces.
    pub arity: usize,
    /// The program; never empty.
    pub steps: Vec<TemplateStep>,
    /// Human-readable description, e.g. `"NAND -> OR(NOT, NOT)"`.
    pub label: &'static str,
}

/// Error returned by [`Template::verify`] when a template does not compute
/// the same function as its target gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyTemplateError {
    /// The failing template's label.
    pub label: &'static str,
    /// The first input pattern (little-endian packed) that disagrees.
    pub pattern: u64,
}

impl fmt::Display for VerifyTemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "template `{}` differs from its target on input pattern {:#b}",
            self.label, self.pattern
        )
    }
}

impl std::error::Error for VerifyTemplateError {}

impl Template {
    /// Evaluates the template over concrete inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity` or a step references a later
    /// step.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.arity, "template arity mismatch");
        let mut vals: Vec<bool> = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let args: Vec<bool> = step
                .args
                .iter()
                .map(|r| match *r {
                    TemplateRef::Input(i) => inputs[i],
                    TemplateRef::Step(s) => vals[s],
                })
                .collect();
            vals.push(step.gtype.eval(&args));
        }
        *vals.last().expect("template has at least one step")
    }

    /// Exhaustively verifies that the template equals its target gate on
    /// every input pattern.
    ///
    /// # Errors
    ///
    /// Returns the first disagreeing pattern.
    pub fn verify(&self) -> Result<(), VerifyTemplateError> {
        let n = self.arity;
        assert!(n <= 6, "verification supported up to 6 inputs");
        let mut buf = vec![false; n];
        for row in 0..(1u64 << n) {
            for (j, slot) in buf.iter_mut().enumerate() {
                *slot = (row >> j) & 1 == 1;
            }
            if self.eval(&buf) != self.target.eval(&buf) {
                return Err(VerifyTemplateError {
                    label: self.label,
                    pattern: row,
                });
            }
        }
        Ok(())
    }

    /// Number of gates the template instantiates.
    pub fn gate_count(&self) -> usize {
        self.steps.len()
    }
}

use TemplateRef::{Input, Step};

fn step(gtype: GateType, args: Vec<TemplateRef>) -> TemplateStep {
    TemplateStep { gtype, args }
}

/// Returns all verified replacement templates for `(gtype, arity)`.
///
/// Binary (arity-2) gates have hand-written De Morgan / sum-of-products
/// alternatives; unary gates have double-negation forms; k-input variadic
/// gates (k ≥ 3) get a generalized De Morgan rewrite. The returned list may
/// be empty only for gate/arity pairs with no registered equivalent
/// (`MUX` keeps a single AND-OR form).
///
/// Every returned template has been verified by exhaustive truth table;
/// this function panics if an internal template is wrong (caught by tests).
pub fn templates_for(gtype: GateType, arity: usize) -> Vec<Template> {
    let mut out: Vec<Template> = Vec::new();
    let mut push =
        |target: GateType, arity: usize, label: &'static str, steps: Vec<TemplateStep>| {
            let t = Template {
                target,
                arity,
                steps,
                label,
            };
            t.verify()
                .unwrap_or_else(|e| panic!("internal template invalid: {e}"));
            out.push(t);
        };

    match (gtype, arity) {
        (GateType::Nand, 2) => {
            // NAND(a,b) = OR(NOT a, NOT b)
            push(
                GateType::Nand,
                2,
                "NAND->OR(NOT,NOT)",
                vec![
                    step(GateType::Not, vec![Input(0)]),
                    step(GateType::Not, vec![Input(1)]),
                    step(GateType::Or, vec![Step(0), Step(1)]),
                ],
            );
            // NAND(a,b) = NOT(AND(a,b))
            push(
                GateType::Nand,
                2,
                "NAND->NOT(AND)",
                vec![
                    step(GateType::And, vec![Input(0), Input(1)]),
                    step(GateType::Not, vec![Step(0)]),
                ],
            );
        }
        (GateType::Nor, 2) => {
            push(
                GateType::Nor,
                2,
                "NOR->AND(NOT,NOT)",
                vec![
                    step(GateType::Not, vec![Input(0)]),
                    step(GateType::Not, vec![Input(1)]),
                    step(GateType::And, vec![Step(0), Step(1)]),
                ],
            );
            push(
                GateType::Nor,
                2,
                "NOR->NOT(OR)",
                vec![
                    step(GateType::Or, vec![Input(0), Input(1)]),
                    step(GateType::Not, vec![Step(0)]),
                ],
            );
        }
        (GateType::And, 2) => {
            push(
                GateType::And,
                2,
                "AND->NOT(NAND)",
                vec![
                    step(GateType::Nand, vec![Input(0), Input(1)]),
                    step(GateType::Not, vec![Step(0)]),
                ],
            );
            push(
                GateType::And,
                2,
                "AND->NOR(NOT,NOT)",
                vec![
                    step(GateType::Not, vec![Input(0)]),
                    step(GateType::Not, vec![Input(1)]),
                    step(GateType::Nor, vec![Step(0), Step(1)]),
                ],
            );
        }
        (GateType::Or, 2) => {
            push(
                GateType::Or,
                2,
                "OR->NOT(NOR)",
                vec![
                    step(GateType::Nor, vec![Input(0), Input(1)]),
                    step(GateType::Not, vec![Step(0)]),
                ],
            );
            push(
                GateType::Or,
                2,
                "OR->NAND(NOT,NOT)",
                vec![
                    step(GateType::Not, vec![Input(0)]),
                    step(GateType::Not, vec![Input(1)]),
                    step(GateType::Nand, vec![Step(0), Step(1)]),
                ],
            );
        }
        (GateType::Xor, 2) => {
            // XOR(a,b) = OR(AND(a, NOT b), AND(NOT a, b))
            push(
                GateType::Xor,
                2,
                "XOR->AND/OR SOP",
                vec![
                    step(GateType::Not, vec![Input(0)]),
                    step(GateType::Not, vec![Input(1)]),
                    step(GateType::And, vec![Input(0), Step(1)]),
                    step(GateType::And, vec![Step(0), Input(1)]),
                    step(GateType::Or, vec![Step(2), Step(3)]),
                ],
            );
            // XOR(a,b) = NAND(NAND(a, NAND(a,b)), NAND(b, NAND(a,b)))
            push(
                GateType::Xor,
                2,
                "XOR->4xNAND",
                vec![
                    step(GateType::Nand, vec![Input(0), Input(1)]),
                    step(GateType::Nand, vec![Input(0), Step(0)]),
                    step(GateType::Nand, vec![Input(1), Step(0)]),
                    step(GateType::Nand, vec![Step(1), Step(2)]),
                ],
            );
            push(
                GateType::Xor,
                2,
                "XOR->NOT(XNOR)",
                vec![
                    step(GateType::Xnor, vec![Input(0), Input(1)]),
                    step(GateType::Not, vec![Step(0)]),
                ],
            );
        }
        (GateType::Xnor, 2) => {
            push(
                GateType::Xnor,
                2,
                "XNOR->NOT(XOR)",
                vec![
                    step(GateType::Xor, vec![Input(0), Input(1)]),
                    step(GateType::Not, vec![Step(0)]),
                ],
            );
            // XNOR(a,b) = OR(AND(a,b), AND(NOT a, NOT b))
            push(
                GateType::Xnor,
                2,
                "XNOR->AND/OR SOP",
                vec![
                    step(GateType::Not, vec![Input(0)]),
                    step(GateType::Not, vec![Input(1)]),
                    step(GateType::And, vec![Input(0), Input(1)]),
                    step(GateType::And, vec![Step(0), Step(1)]),
                    step(GateType::Or, vec![Step(2), Step(3)]),
                ],
            );
        }
        (GateType::Not, 1) => {
            push(
                GateType::Not,
                1,
                "NOT->NAND(a,a)",
                vec![step(GateType::Nand, vec![Input(0), Input(0)])],
            );
            push(
                GateType::Not,
                1,
                "NOT->NOR(a,a)",
                vec![step(GateType::Nor, vec![Input(0), Input(0)])],
            );
        }
        (GateType::Buf, 1) => {
            push(
                GateType::Buf,
                1,
                "BUF->NOT(NOT)",
                vec![
                    step(GateType::Not, vec![Input(0)]),
                    step(GateType::Not, vec![Step(0)]),
                ],
            );
            push(
                GateType::Buf,
                1,
                "BUF->AND(a,a)",
                vec![step(GateType::And, vec![Input(0), Input(0)])],
            );
            push(
                GateType::Buf,
                1,
                "BUF->OR(a,a)",
                vec![step(GateType::Or, vec![Input(0), Input(0)])],
            );
        }
        (GateType::Mux, 3) => {
            // MUX(s,a,b) = OR(AND(NOT s, a), AND(s, b))
            push(
                GateType::Mux,
                3,
                "MUX->AND/OR",
                vec![
                    step(GateType::Not, vec![Input(0)]),
                    step(GateType::And, vec![Step(0), Input(1)]),
                    step(GateType::And, vec![Input(0), Input(2)]),
                    step(GateType::Or, vec![Step(1), Step(2)]),
                ],
            );
            // MUX(s,a,b) = NAND(NAND(NOT s, a), NAND(s, b))
            push(
                GateType::Mux,
                3,
                "MUX->NAND/NAND",
                vec![
                    step(GateType::Not, vec![Input(0)]),
                    step(GateType::Nand, vec![Step(0), Input(1)]),
                    step(GateType::Nand, vec![Input(0), Input(2)]),
                    step(GateType::Nand, vec![Step(1), Step(2)]),
                ],
            );
        }
        // Generalized De Morgan rewrites for wide variadic gates.
        (gt, n) if n >= 3 && gt.is_variadic() => {
            let mut steps = Vec::new();
            match gt {
                GateType::Nand => {
                    // NAND(a..) = OR(NOT a ..)
                    for i in 0..n {
                        steps.push(step(GateType::Not, vec![Input(i)]));
                    }
                    steps.push(step(GateType::Or, (0..n).map(Step).collect()));
                    push(GateType::Nand, n, "NAND_k->OR(NOTs)", steps);
                }
                GateType::Nor => {
                    for i in 0..n {
                        steps.push(step(GateType::Not, vec![Input(i)]));
                    }
                    steps.push(step(GateType::And, (0..n).map(Step).collect()));
                    push(GateType::Nor, n, "NOR_k->AND(NOTs)", steps);
                }
                GateType::And => {
                    steps.push(step(GateType::Nand, (0..n).map(Input).collect()));
                    steps.push(step(GateType::Not, vec![Step(0)]));
                    push(GateType::And, n, "AND_k->NOT(NAND_k)", steps);
                }
                GateType::Or => {
                    steps.push(step(GateType::Nor, (0..n).map(Input).collect()));
                    steps.push(step(GateType::Not, vec![Step(0)]));
                    push(GateType::Or, n, "OR_k->NOT(NOR_k)", steps);
                }
                GateType::Xor => {
                    // XOR(a, rest..) = XNOR(NOT a, rest..)
                    steps.push(step(GateType::Not, vec![Input(0)]));
                    let mut args = vec![Step(0)];
                    args.extend((1..n).map(Input));
                    steps.push(step(GateType::Xnor, args));
                    push(GateType::Xor, n, "XOR_k->XNOR_k(NOT a0)", steps);
                }
                GateType::Xnor => {
                    steps.push(step(GateType::Not, vec![Input(0)]));
                    let mut args = vec![Step(0)];
                    args.extend((1..n).map(Input));
                    steps.push(step(GateType::Xor, args));
                    push(GateType::Xnor, n, "XNOR_k->XOR_k(NOT a0)", steps);
                }
                _ => unreachable!("is_variadic covers the six variadic types"),
            }
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert_netlist::ALL_GATE_TYPES;

    #[test]
    fn all_registered_templates_verify() {
        for g in ALL_GATE_TYPES {
            for arity in 1..=4usize {
                if !g.arity_ok(arity) {
                    continue;
                }
                for t in templates_for(g, arity) {
                    assert!(t.verify().is_ok(), "{} ({arity})", t.label);
                    assert_eq!(t.arity, arity);
                    assert_eq!(t.target, g);
                }
            }
        }
    }

    #[test]
    fn every_binary_gate_has_a_template() {
        for g in [
            GateType::And,
            GateType::Or,
            GateType::Nand,
            GateType::Nor,
            GateType::Xor,
            GateType::Xnor,
        ] {
            assert!(
                !templates_for(g, 2).is_empty(),
                "{g} has no binary templates"
            );
        }
        assert!(!templates_for(GateType::Not, 1).is_empty());
        assert!(!templates_for(GateType::Buf, 1).is_empty());
        assert!(!templates_for(GateType::Mux, 3).is_empty());
    }

    #[test]
    fn wide_gates_have_templates() {
        for g in [
            GateType::And,
            GateType::Or,
            GateType::Nand,
            GateType::Nor,
            GateType::Xor,
            GateType::Xnor,
        ] {
            for n in 3..=5 {
                assert!(!templates_for(g, n).is_empty(), "{g}/{n}");
            }
        }
    }

    #[test]
    fn paper_example_nand_to_or_not_not() {
        // "A = NAND(B, C) may be replaced by A = OR(NOT(B), NOT(C))"
        let ts = templates_for(GateType::Nand, 2);
        let t = ts.iter().find(|t| t.label == "NAND->OR(NOT,NOT)").unwrap();
        assert_eq!(t.gate_count(), 3);
        assert!(!t.eval(&[true, true]));
        assert!(t.eval(&[false, true]));
    }

    #[test]
    fn broken_template_detected() {
        // AND replaced by OR must fail verification.
        let t = Template {
            target: GateType::And,
            arity: 2,
            steps: vec![step(GateType::Or, vec![Input(0), Input(1)])],
            label: "broken",
        };
        let err = t.verify().unwrap_err();
        assert_eq!(err.label, "broken");
    }

    #[test]
    fn no_identity_templates() {
        // A template must not be the single original gate (that would make
        // R-Index=1 corruption a no-op).
        for g in ALL_GATE_TYPES {
            for arity in 1..=4usize {
                if !g.arity_ok(arity) {
                    continue;
                }
                for t in templates_for(g, arity) {
                    let single_same = t.steps.len() == 1 && t.steps[0].gtype == g;
                    assert!(!single_same, "{} is an identity template", t.label);
                }
            }
        }
    }
}
