//! Ground-truth word labels for generated circuits.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The ground-truth grouping of a circuit's bits into words.
///
/// Bits are identified by their **flip-flop index** (the position of the
/// flip-flop in [`rebert_netlist::Netlist::dffs`], which is also the index
/// of the bit in [`rebert_netlist::Netlist::bits`]). Every flip-flop
/// belongs to exactly one word.
///
/// # Examples
///
/// ```
/// use rebert_circuits::WordLabels;
///
/// let labels = WordLabels::new(vec![vec![0, 1, 2], vec![3, 4]]);
/// assert_eq!(labels.word_count(), 2);
/// assert_eq!(labels.assignment(), vec![0, 0, 0, 1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WordLabels {
    words: Vec<Vec<usize>>,
}

impl WordLabels {
    /// Creates labels from explicit per-word bit index lists.
    ///
    /// # Panics
    ///
    /// Panics if a bit index appears in more than one word.
    pub fn new(words: Vec<Vec<usize>>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for w in &words {
            for &b in w {
                assert!(seen.insert(b), "bit {b} appears in two words");
            }
        }
        WordLabels { words }
    }

    /// Builds labels from a flat assignment vector: `assign[i]` is the word
    /// id of bit `i`. Word ids need not be contiguous.
    pub fn from_assignment(assign: &[usize]) -> Self {
        let mut map: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for (bit, &w) in assign.iter().enumerate() {
            map.entry(w).or_default().push(bit);
        }
        WordLabels {
            words: map.into_values().collect(),
        }
    }

    /// The words, each a sorted-insertion list of bit indices.
    pub fn words(&self) -> &[Vec<usize>] {
        &self.words
    }

    /// Number of words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Total number of labeled bits.
    pub fn bit_count(&self) -> usize {
        self.words.iter().map(Vec::len).sum()
    }

    /// Flattens to an assignment vector indexed by bit: `out[i]` is the
    /// word id of bit `i`. Bit indices must be dense `0..bit_count`.
    ///
    /// # Panics
    ///
    /// Panics if the bit indices are not exactly `0..bit_count()`.
    pub fn assignment(&self) -> Vec<usize> {
        let n = self.bit_count();
        let mut out = vec![usize::MAX; n];
        for (wi, w) in self.words.iter().enumerate() {
            for &b in w {
                assert!(b < n, "bit index {b} out of dense range 0..{n}");
                out[b] = wi;
            }
        }
        assert!(
            out.iter().all(|&w| w != usize::MAX),
            "bit indices are not dense"
        );
        out
    }

    /// Whether two bits belong to the same word.
    pub fn same_word(&self, a: usize, b: usize) -> bool {
        self.words.iter().any(|w| w.contains(&a) && w.contains(&b))
    }

    /// Width of the largest word.
    pub fn max_width(&self) -> usize {
        self.words.iter().map(Vec::len).max().unwrap_or(0)
    }
}

impl fmt::Display for WordLabels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} words over {} bits",
            self.word_count(),
            self.bit_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_assignment() {
        let labels = WordLabels::new(vec![vec![0, 2], vec![1, 3, 4]]);
        let assign = labels.assignment();
        let back = WordLabels::from_assignment(&assign);
        assert_eq!(back.assignment(), assign);
    }

    #[test]
    #[should_panic(expected = "two words")]
    fn overlapping_words_rejected() {
        let _ = WordLabels::new(vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn same_word_queries() {
        let labels = WordLabels::new(vec![vec![0, 1], vec![2]]);
        assert!(labels.same_word(0, 1));
        assert!(!labels.same_word(0, 2));
        assert_eq!(labels.max_width(), 2);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_assignment_rejected() {
        let labels = WordLabels::new(vec![vec![0, 5]]);
        let _ = labels.assignment();
    }
}
