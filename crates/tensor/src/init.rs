//! Weight initialization.

use rand::distributions::Distribution;
use rand::Rng;

use crate::tensor::Tensor;

/// Samples a `rows × cols` tensor from `N(0, std²)`.
pub fn normal<R: Rng>(rng: &mut R, rows: usize, cols: usize, std: f32) -> Tensor {
    // Box–Muller, to avoid depending on rand_distr.
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < rows * cols {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(rows, cols, data)
}

/// Xavier/Glorot-uniform initialization for a `fan_in × fan_out` weight.
pub fn xavier<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let dist = rand::distributions::Uniform::new_inclusive(-bound, bound);
    let data = (0..fan_in * fan_out).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(fan_in, fan_out, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = ChaCha20Rng::seed_from_u64(0);
        let t = normal(&mut rng, 100, 100, 0.5);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn xavier_within_bound() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let t = xavier(&mut rng, 64, 64);
        let bound = (6.0 / 128.0f32).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= bound + 1e-6));
        // Not degenerate.
        assert!(t.norm() > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = normal(&mut ChaCha20Rng::seed_from_u64(7), 4, 4, 1.0);
        let b = normal(&mut ChaCha20Rng::seed_from_u64(7), 4, 4, 1.0);
        assert_eq!(a, b);
    }
}
