//! Reverse-mode automatic differentiation over [`Tensor`]s.
//!
//! A [`Tape`] records each operation as it executes; [`Tape::backward`]
//! then walks the record in reverse, producing gradients for every node.
//! Model code inserts its parameters as leaves at the start of each
//! forward pass and reads their gradients back by [`VarId`] afterwards.
//!
//! Gradient correctness for every operation is property-tested against
//! central finite differences (see the crate tests).

use crate::tensor::Tensor;

/// Identifier of a node on a [`Tape`]. Only meaningful for the tape that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

impl VarId {
    /// The raw index of this node on its tape.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Input with no parents (parameter or constant).
    Leaf,
    /// `C = A @ B`.
    MatMul(VarId, VarId),
    /// `C = A @ B^T` (the transpose is folded into the kernel).
    MatMulNt(VarId, VarId),
    /// `C = A + B` (same shape).
    Add(VarId, VarId),
    /// `C = A + bias` with `bias` a `1 × cols` row broadcast over rows.
    AddBias(VarId, VarId),
    /// Elementwise product.
    Mul(VarId, VarId),
    /// `C = c · A`.
    Scale(VarId, f32),
    /// GELU activation (tanh approximation).
    Gelu(VarId),
    /// Hyperbolic tangent.
    Tanh(VarId),
    /// Rectified linear unit.
    Relu(VarId),
    /// Logistic sigmoid.
    Sigmoid(VarId),
    /// Row-wise softmax.
    SoftmaxRows(VarId),
    /// Row-wise layer normalization with learnable `gamma`/`beta`
    /// (`1 × cols` each).
    LayerNorm {
        x: VarId,
        gamma: VarId,
        beta: VarId,
        eps: f32,
    },
    /// Columns `[start, start+len)` of the parent.
    ColSlice { a: VarId, start: usize, len: usize },
    /// Horizontal concatenation of parts with identical row counts.
    ColConcat(Vec<VarId>),
    /// Single row `row` of the parent as a `1 × cols` tensor.
    RowSlice { a: VarId, row: usize },
    /// Rows of `table` selected by `ids` (embedding lookup).
    Gather { table: VarId, ids: Vec<usize> },
    /// Mean of all elements, as `1 × 1`.
    MeanAll(VarId),
    /// Mean binary-cross-entropy-with-logits loss against constant
    /// targets, as `1 × 1`. `logits` and `targets` share shape.
    BceWithLogits { logits: VarId, targets: Tensor },
}

#[derive(Debug, Clone)]
struct Node {
    value: Tensor,
    op: Op,
}

/// A gradient tape: forward operations append nodes, `backward` fills in
/// gradients.
///
/// # Examples
///
/// ```
/// use rebert_tensor::{Tape, Tensor};
///
/// let mut tape = Tape::new();
/// let x = tape.leaf(Tensor::from_rows(&[&[2.0]]));
/// let y = tape.mul(x, x); // y = x²
/// let grads = tape.backward(y);
/// // dy/dx = 2x = 4
/// assert!((grads[x.index()].as_ref().unwrap().data()[0] - 4.0).abs() < 1e-6);
/// ```
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> VarId {
        self.nodes.push(Node { value, op });
        VarId(self.nodes.len() - 1)
    }

    /// Records an input (parameter or constant).
    pub fn leaf(&mut self, value: Tensor) -> VarId {
        self.push(value, Op::Leaf)
    }

    /// Records `a @ b`.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Records `a @ b^T` — the scores kernel of scaled dot-product
    /// attention (`Q @ K^T`), without materializing the transpose.
    pub fn matmul_nt(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).matmul_nt(self.value(b));
        self.push(v, Op::MatMulNt(a, b))
    }

    /// Records `a + b` (same shape).
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Records `a + bias` with row broadcasting.
    pub fn add_bias(&mut self, a: VarId, bias: VarId) -> VarId {
        let v = self.value(a).add_bias(self.value(bias));
        self.push(v, Op::AddBias(a, bias))
    }

    /// Records the elementwise product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Records `c · a`.
    pub fn scale(&mut self, a: VarId, c: f32) -> VarId {
        let v = self.value(a).scale(c);
        self.push(v, Op::Scale(a, c))
    }

    /// Records the GELU activation (tanh approximation).
    pub fn gelu(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(gelu);
        self.push(v, Op::Gelu(a))
    }

    /// Records `tanh(a)`.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Records `relu(a)`.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Records the logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(sigmoid);
        self.push(v, Op::Sigmoid(a))
    }

    /// Records a row-wise softmax.
    pub fn softmax_rows(&mut self, a: VarId) -> VarId {
        let v = self.value(a).softmax_rows();
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Records row-wise layer normalization with learnable scale/shift.
    ///
    /// # Panics
    ///
    /// Panics if `gamma`/`beta` are not `1 × cols` of `x`.
    pub fn layer_norm(&mut self, x: VarId, gamma: VarId, beta: VarId, eps: f32) -> VarId {
        let xt = self.value(x);
        let g = self.value(gamma);
        let b = self.value(beta);
        assert_eq!(g.shape(), (1, xt.cols()), "gamma shape");
        assert_eq!(b.shape(), (1, xt.cols()), "beta shape");
        let mut out = Tensor::zeros(xt.rows(), xt.cols());
        for i in 0..xt.rows() {
            let row = xt.row(i);
            let (mean, var) = row_mean_var(row);
            let inv = 1.0 / (var + eps).sqrt();
            for j in 0..xt.cols() {
                let xhat = (row[j] - mean) * inv;
                out[(i, j)] = xhat * g.data()[j] + b.data()[j];
            }
        }
        self.push(
            out,
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
            },
        )
    }

    /// Records a column slice `[start, start+len)`.
    pub fn col_slice(&mut self, a: VarId, start: usize, len: usize) -> VarId {
        let v = self.value(a).col_slice(start, len);
        self.push(v, Op::ColSlice { a, start, len })
    }

    /// Records a horizontal concatenation.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn col_concat(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "col_concat of nothing");
        let rows = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let mut out = Tensor::zeros(rows, total);
        let mut off = 0;
        for &p in parts {
            let t = self.value(p);
            assert_eq!(t.rows(), rows, "col_concat row mismatch");
            for i in 0..rows {
                out.row_mut(i)[off..off + t.cols()].copy_from_slice(t.row(i));
            }
            off += t.cols();
        }
        self.push(out, Op::ColConcat(parts.to_vec()))
    }

    /// Records extraction of one row as `1 × cols`.
    pub fn row_slice(&mut self, a: VarId, row: usize) -> VarId {
        let v = Tensor::row_vector(self.value(a).row(row));
        self.push(v, Op::RowSlice { a, row })
    }

    /// Records an embedding lookup: row `ids[i]` of `table` becomes row
    /// `i` of the output.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn gather(&mut self, table: VarId, ids: &[usize]) -> VarId {
        let t = self.value(table);
        let mut out = Tensor::zeros(ids.len(), t.cols());
        for (i, &id) in ids.iter().enumerate() {
            assert!(id < t.rows(), "gather id {id} out of range");
            out.row_mut(i).copy_from_slice(t.row(id));
        }
        self.push(
            out,
            Op::Gather {
                table,
                ids: ids.to_vec(),
            },
        )
    }

    /// Records the mean of all elements as a `1 × 1` tensor.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let v = Tensor::from_rows(&[&[self.value(a).mean()]]);
        self.push(v, Op::MeanAll(a))
    }

    /// Records the mean binary-cross-entropy-with-logits loss against
    /// constant `targets` (same shape as the logits), as `1 × 1`.
    ///
    /// Uses the numerically stable form
    /// `max(z, 0) − z·t + ln(1 + e^(−|z|))`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn bce_with_logits(&mut self, logits: VarId, targets: Tensor) -> VarId {
        let z = self.value(logits);
        assert_eq!(z.shape(), targets.shape(), "target shape mismatch");
        let mut total = 0.0f32;
        for (zi, ti) in z.data().iter().zip(targets.data()) {
            total += zi.max(0.0) - zi * ti + (-zi.abs()).exp().ln_1p();
        }
        let v = Tensor::from_rows(&[&[total / z.len() as f32]]);
        self.push(v, Op::BceWithLogits { logits, targets })
    }

    /// Runs reverse-mode differentiation from `loss` (which must be
    /// `1 × 1`) and returns per-node gradients, indexed by
    /// [`VarId::index`]. Nodes not on the path to `loss` keep `None`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `1 × 1` tensor.
    pub fn backward(&self, loss: VarId) -> Vec<Option<Tensor>> {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward must start from a scalar"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::from_rows(&[&[1.0]]));

        for idx in (0..=loss.0).rev() {
            let Some(grad_out) = grads[idx].clone() else {
                continue;
            };
            match &self.nodes[idx].op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let da = grad_out.matmul_nt(self.value(*b));
                    let db = self.value(*a).matmul_tn(&grad_out);
                    accumulate(&mut grads, a.0, da);
                    accumulate(&mut grads, b.0, db);
                }
                Op::MatMulNt(a, b) => {
                    // C = A B^T  =>  dA = dC B ;  dB = dC^T A.
                    let da = grad_out.matmul(self.value(*b));
                    let db = grad_out.matmul_tn(self.value(*a));
                    accumulate(&mut grads, a.0, da);
                    accumulate(&mut grads, b.0, db);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, a.0, grad_out.clone());
                    accumulate(&mut grads, b.0, grad_out);
                }
                Op::AddBias(a, bias) => {
                    accumulate(&mut grads, bias.0, grad_out.col_sums());
                    accumulate(&mut grads, a.0, grad_out);
                }
                Op::Mul(a, b) => {
                    let da = grad_out.mul(self.value(*b));
                    let db = grad_out.mul(self.value(*a));
                    accumulate(&mut grads, a.0, da);
                    accumulate(&mut grads, b.0, db);
                }
                Op::Scale(a, c) => accumulate(&mut grads, a.0, grad_out.scale(*c)),
                Op::Gelu(a) => {
                    let x = self.value(*a);
                    let da = Tensor::from_vec(
                        x.rows(),
                        x.cols(),
                        x.data()
                            .iter()
                            .zip(grad_out.data())
                            .map(|(&xi, &gi)| gelu_grad(xi) * gi)
                            .collect(),
                    );
                    accumulate(&mut grads, a.0, da);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[idx].value;
                    let da = Tensor::from_vec(
                        y.rows(),
                        y.cols(),
                        y.data()
                            .iter()
                            .zip(grad_out.data())
                            .map(|(&yi, &gi)| (1.0 - yi * yi) * gi)
                            .collect(),
                    );
                    accumulate(&mut grads, a.0, da);
                }
                Op::Relu(a) => {
                    let x = self.value(*a);
                    let da = Tensor::from_vec(
                        x.rows(),
                        x.cols(),
                        x.data()
                            .iter()
                            .zip(grad_out.data())
                            .map(|(&xi, &gi)| if xi > 0.0 { gi } else { 0.0 })
                            .collect(),
                    );
                    accumulate(&mut grads, a.0, da);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[idx].value;
                    let da = Tensor::from_vec(
                        y.rows(),
                        y.cols(),
                        y.data()
                            .iter()
                            .zip(grad_out.data())
                            .map(|(&yi, &gi)| yi * (1.0 - yi) * gi)
                            .collect(),
                    );
                    accumulate(&mut grads, a.0, da);
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.nodes[idx].value;
                    let mut da = Tensor::zeros(y.rows(), y.cols());
                    for i in 0..y.rows() {
                        let yr = y.row(i);
                        let gr = grad_out.row(i);
                        let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
                        for j in 0..y.cols() {
                            da[(i, j)] = yr[j] * (gr[j] - dot);
                        }
                    }
                    accumulate(&mut grads, a.0, da);
                }
                Op::LayerNorm {
                    x,
                    gamma,
                    beta,
                    eps,
                } => {
                    let xt = self.value(*x);
                    let g = self.value(*gamma);
                    let n = xt.cols() as f32;
                    let mut dx = Tensor::zeros(xt.rows(), xt.cols());
                    let mut dgamma = Tensor::zeros(1, xt.cols());
                    let mut dbeta = Tensor::zeros(1, xt.cols());
                    for i in 0..xt.rows() {
                        let row = xt.row(i);
                        let (mean, var) = row_mean_var(row);
                        let inv = 1.0 / (var + eps).sqrt();
                        // dy/dxhat = gamma; accumulate per-row stats.
                        let mut sum_dxhat = 0.0f32;
                        let mut sum_dxhat_xhat = 0.0f32;
                        let gr = grad_out.row(i);
                        let mut xhat = vec![0.0f32; xt.cols()];
                        let mut dxhat = vec![0.0f32; xt.cols()];
                        for j in 0..xt.cols() {
                            xhat[j] = (row[j] - mean) * inv;
                            dxhat[j] = gr[j] * g.data()[j];
                            sum_dxhat += dxhat[j];
                            sum_dxhat_xhat += dxhat[j] * xhat[j];
                            dgamma.data_mut()[j] += gr[j] * xhat[j];
                            dbeta.data_mut()[j] += gr[j];
                        }
                        for j in 0..xt.cols() {
                            dx[(i, j)] =
                                inv * (dxhat[j] - sum_dxhat / n - xhat[j] * sum_dxhat_xhat / n);
                        }
                    }
                    accumulate(&mut grads, x.0, dx);
                    accumulate(&mut grads, gamma.0, dgamma);
                    accumulate(&mut grads, beta.0, dbeta);
                }
                Op::ColSlice { a, start, len } => {
                    let src = self.value(*a);
                    let mut da = Tensor::zeros(src.rows(), src.cols());
                    for i in 0..grad_out.rows() {
                        da.row_mut(i)[*start..*start + *len].copy_from_slice(grad_out.row(i));
                    }
                    accumulate(&mut grads, a.0, da);
                }
                Op::ColConcat(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let w = self.value(p).cols();
                        let dp = grad_out.col_slice(off, w);
                        accumulate(&mut grads, p.0, dp);
                        off += w;
                    }
                }
                Op::RowSlice { a, row } => {
                    let src = self.value(*a);
                    let mut da = Tensor::zeros(src.rows(), src.cols());
                    da.row_mut(*row).copy_from_slice(grad_out.row(0));
                    accumulate(&mut grads, a.0, da);
                }
                Op::Gather { table, ids } => {
                    let t = self.value(*table);
                    let mut dt = Tensor::zeros(t.rows(), t.cols());
                    for (i, &id) in ids.iter().enumerate() {
                        let gr = grad_out.row(i);
                        for (j, &g) in gr.iter().enumerate() {
                            dt[(id, j)] += g;
                        }
                    }
                    accumulate(&mut grads, table.0, dt);
                }
                Op::MeanAll(a) => {
                    let src = self.value(*a);
                    let g = grad_out.data()[0] / src.len() as f32;
                    accumulate(&mut grads, a.0, Tensor::full(src.rows(), src.cols(), g));
                }
                Op::BceWithLogits { logits, targets } => {
                    let z = self.value(*logits);
                    let scale = grad_out.data()[0] / z.len() as f32;
                    let dz = Tensor::from_vec(
                        z.rows(),
                        z.cols(),
                        z.data()
                            .iter()
                            .zip(targets.data())
                            .map(|(&zi, &ti)| (sigmoid(zi) - ti) * scale)
                            .collect(),
                    );
                    accumulate(&mut grads, logits.0, dz);
                }
            }
        }
        grads
    }
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, g: Tensor) {
    match &mut grads[idx] {
        Some(existing) => *existing = existing.add(&g),
        slot @ None => *slot = Some(g),
    }
}

/// Mean and (population) variance of one row, as used by layer norm.
///
/// Public so the tape-free inference path normalizes with *exactly* the
/// same arithmetic as the taped forward.
pub fn row_mean_var(row: &[f32]) -> (f32, f32) {
    let n = row.len() as f32;
    let mean = row.iter().sum::<f32>() / n;
    let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n;
    (mean, var)
}

/// Logistic sigmoid `1 / (1 + e^(−x))`.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// GELU activation, tanh approximation (the BERT standard).
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`].
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}
