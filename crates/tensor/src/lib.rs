//! # rebert-tensor
//!
//! Minimal deep-learning substrate for the ReBERT reproduction: a dense
//! 2-D `f32` [`Tensor`] and a reverse-mode autograd [`Tape`] with exactly
//! the operations a BERT-style encoder needs (matmul, softmax, layer norm,
//! GELU, embedding gather, column slicing for attention heads, BCE loss).
//!
//! Built from scratch because the established Rust DL frameworks do not
//! yet support the paper's custom tree positional embeddings cleanly (see
//! `DESIGN.md` for the substitution rationale).
//!
//! ## Example: differentiate a tiny expression
//!
//! ```
//! use rebert_tensor::{Tape, Tensor};
//!
//! let mut tape = Tape::new();
//! let w = tape.leaf(Tensor::from_rows(&[&[3.0]]));
//! let x = tape.leaf(Tensor::from_rows(&[&[2.0]]));
//! let y = tape.matmul(w, x);          // y = w·x
//! let loss = tape.mean_all(y);
//! let grads = tape.backward(loss);
//! let dw = grads[w.index()].as_ref().expect("on path");
//! assert!((dw.data()[0] - 2.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

mod init;
pub mod kernels;
mod tape;
mod tensor;

pub use init::{normal, xavier};
pub use kernels::{simd_available, simd_level, SimdLevel};
pub use tape::{gelu, gelu_grad, row_mean_var, sigmoid, Tape, VarId};
pub use tensor::Tensor;
