//! Runtime-dispatched compute kernels for the inference hot path.
//!
//! The blocked scalar kernels on [`Tensor`] are the *reference*
//! implementations: deterministic, portable, and bit-identical to the
//! naive triple loop (the autograd tape and every bitwise regression
//! test pin them). This module layers faster, non-bit-identical paths
//! on top, selected at **runtime**:
//!
//! - [`SimdLevel::Avx2`] — AVX2 + FMA kernels on `x86_64`, used only
//!   when [`is_x86_feature_detected!`] confirms both features;
//! - [`SimdLevel::Neon`] — NEON kernels on `aarch64`, where NEON is part
//!   of the baseline ISA;
//! - [`SimdLevel::Scalar`] — the blocked scalar kernels, always
//!   available and the fallback everywhere else.
//!
//! Every dispatch function takes an explicit [`SimdLevel`] so callers
//! can pin the reference path (`Scalar`) for bitwise reproducibility or
//! pass [`simd_level()`] for speed. Passing a level the host does not
//! support is safe: the cached feature check re-validates before any
//! `unsafe` kernel runs, and the call falls back to the scalar kernel.
//!
//! The int8 kernels ([`matmul_q8_into`]) implement the quantized
//! backend: weights are `i8` with one `f32` scale per row and the
//! accumulation stays in `f32`, so `out[i][j] = Σ_k (x[i][k]·s[k])·q[k][j]`.
//!
//! SIMD results are *not* bit-identical to scalar results (FMA contracts
//! the multiply-add rounding, reductions are lane-parallel, and `exp` is
//! a polynomial), but they stay within tight ULP bounds — see the
//! `kernel_parity` property tests.

use crate::tape::{gelu, row_mean_var};
use crate::tensor::Tensor;

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod avx2;
#[cfg(all(target_arch = "aarch64", not(miri)))]
mod neon;

/// Instruction-set level used by the dispatched kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdLevel {
    /// Portable blocked scalar kernels — the bitwise reference path.
    #[default]
    Scalar,
    /// AVX2 + FMA (`x86_64`, runtime-detected).
    Avx2,
    /// NEON (`aarch64` baseline).
    Neon,
}

impl SimdLevel {
    /// Short lowercase name (`"scalar"`, `"avx2"`, `"neon"`).
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }
}

/// Cached runtime check for AVX2 + FMA. Always `false` off `x86_64` and
/// under Miri (which does not model vendor intrinsics).
fn avx2_ok() -> bool {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        use std::sync::OnceLock;
        static OK: OnceLock<bool> = OnceLock::new();
        *OK.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        false
    }
}

/// The best kernel level this host supports, detected once and cached.
///
/// `x86_64` hosts report [`SimdLevel::Avx2`] only when both AVX2 and FMA
/// are present; `aarch64` hosts always report [`SimdLevel::Neon`];
/// everything else (and any run under Miri) reports
/// [`SimdLevel::Scalar`].
pub fn simd_level() -> SimdLevel {
    if avx2_ok() {
        return SimdLevel::Avx2;
    }
    #[cfg(all(target_arch = "aarch64", not(miri)))]
    {
        return SimdLevel::Neon;
    }
    #[allow(unreachable_code)]
    SimdLevel::Scalar
}

/// Whether this host has any SIMD kernel path at all.
pub fn simd_available() -> bool {
    simd_level() != SimdLevel::Scalar
}

/// Matrix product `out = a @ b` at the requested kernel level.
///
/// `Scalar` (or an unsupported level) delegates to the bit-exact
/// [`Tensor::matmul_into`]; SIMD levels use FMA tiles with ascending-`k`
/// accumulation per lane.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_into(level: SimdLevel, a: &Tensor, b: &Tensor, out: &mut Tensor) {
    match level {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        SimdLevel::Avx2 if avx2_ok() => {
            assert_matmul_shapes(a, b);
            out.resize(a.rows(), b.cols());
            // SAFETY: AVX2+FMA confirmed by `avx2_ok`; slice lengths
            // match the dimensions passed.
            unsafe {
                avx2::matmul_into(
                    a.data(),
                    b.data(),
                    out.data_mut(),
                    a.rows(),
                    a.cols(),
                    b.cols(),
                )
            }
        }
        #[cfg(all(target_arch = "aarch64", not(miri)))]
        SimdLevel::Neon => {
            assert_matmul_shapes(a, b);
            out.resize(a.rows(), b.cols());
            // SAFETY: NEON is baseline on aarch64; slice lengths match.
            unsafe {
                neon::matmul_into(
                    a.data(),
                    b.data(),
                    out.data_mut(),
                    a.rows(),
                    a.cols(),
                    b.cols(),
                )
            }
        }
        _ => a.matmul_into(b, out),
    }
}

/// Matrix product `out = a @ b^T` at the requested kernel level.
///
/// SIMD levels run lane-parallel dot products over the rows of both
/// operands (unit stride, no transpose materialized); `Scalar` delegates
/// to the bit-exact [`Tensor::matmul_nt_into`].
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_nt_into(level: SimdLevel, a: &Tensor, b: &Tensor, out: &mut Tensor) {
    match level {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        SimdLevel::Avx2 if avx2_ok() => {
            assert_matmul_nt_shapes(a, b);
            out.resize(a.rows(), b.rows());
            // SAFETY: AVX2+FMA confirmed by `avx2_ok`; slice lengths match.
            unsafe {
                avx2::matmul_nt_into(
                    a.data(),
                    b.data(),
                    out.data_mut(),
                    a.rows(),
                    a.cols(),
                    b.rows(),
                )
            }
        }
        #[cfg(all(target_arch = "aarch64", not(miri)))]
        SimdLevel::Neon => {
            assert_matmul_nt_shapes(a, b);
            out.resize(a.rows(), b.rows());
            // SAFETY: NEON is baseline on aarch64; slice lengths match.
            unsafe {
                neon::matmul_nt_into(
                    a.data(),
                    b.data(),
                    out.data_mut(),
                    a.rows(),
                    a.cols(),
                    b.rows(),
                )
            }
        }
        _ => a.matmul_nt_into(b, out),
    }
}

/// Row-wise layer normalization in place: each row is standardized by
/// its mean/variance and affinely transformed by `gamma`/`beta`.
///
/// The `Scalar` arm reproduces the inference-engine arithmetic exactly
/// (statistics via [`row_mean_var`], then `(x - mean) * inv * g + b`),
/// so callers that need bitwise parity with the autograd tape can pin it.
///
/// # Panics
///
/// Panics if `gamma.len()` or `beta.len()` differ from `x.cols()`.
pub fn layer_norm_rows(level: SimdLevel, x: &mut Tensor, gamma: &[f32], beta: &[f32], eps: f32) {
    let cols = x.cols();
    assert_eq!(gamma.len(), cols, "gamma length");
    assert_eq!(beta.len(), cols, "beta length");
    match level {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        SimdLevel::Avx2 if avx2_ok() => {
            let rows = x.rows();
            // SAFETY: AVX2+FMA confirmed by `avx2_ok`; gamma/beta lengths
            // asserted against `cols` above.
            unsafe { avx2::layer_norm_rows(x.data_mut(), rows, cols, gamma, beta, eps) }
        }
        _ => {
            for i in 0..x.rows() {
                let row = x.row_mut(i);
                let (mean, var) = row_mean_var(row);
                let inv = 1.0 / (var + eps).sqrt();
                for (v, (&g, &b)) in row.iter_mut().zip(gamma.iter().zip(beta)) {
                    let xhat = (*v - mean) * inv;
                    *v = xhat * g + b;
                }
            }
        }
    }
}

/// Applies GELU elementwise in place.
///
/// The `Scalar` arm is exactly `x.map_inplace(gelu)`; the AVX2 arm uses
/// a polynomial `exp` to evaluate the tanh, accurate to ~1e-6 relative.
pub fn gelu_inplace(level: SimdLevel, x: &mut Tensor) {
    match level {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        SimdLevel::Avx2 if avx2_ok() => {
            // SAFETY: AVX2+FMA confirmed by `avx2_ok`.
            unsafe { avx2::gelu_inplace(x.data_mut()) }
        }
        _ => x.map_inplace(gelu),
    }
}

/// Row-wise softmax in place (max-subtracted, sum-normalized), matching
/// [`Tensor::softmax_rows_inplace`] semantics including the all-zero-row
/// guard.
pub fn softmax_rows_inplace(level: SimdLevel, x: &mut Tensor) {
    match level {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        SimdLevel::Avx2 if avx2_ok() => {
            let (rows, cols) = x.shape();
            // SAFETY: AVX2+FMA confirmed by `avx2_ok`.
            unsafe { avx2::softmax_rows_inplace(x.data_mut(), rows, cols) }
        }
        _ => x.softmax_rows_inplace(),
    }
}

/// Quantized matrix product `out = a @ dequantize(q)` where `q` is a
/// row-major `a.cols() × n` matrix of `i8` and `scales[k]` is the `f32`
/// scale of row `k` (so `dequantize(q)[k][j] = scales[k] * q[k][j]`).
///
/// The scale is folded into the left operand (`a[i][k] * scales[k]`) and
/// the accumulation runs entirely in `f32`, ascending in `k` — the int8
/// format changes the weights, not the accumulator.
///
/// # Panics
///
/// Panics if `scales.len() != a.cols()` or `q.len() != a.cols() * n`.
pub fn matmul_q8_into(
    level: SimdLevel,
    a: &Tensor,
    scales: &[f32],
    q: &[i8],
    n: usize,
    out: &mut Tensor,
) {
    let (m, kdim) = a.shape();
    assert_eq!(scales.len(), kdim, "one scale per quantized row");
    assert_eq!(q.len(), kdim * n, "quantized data length");
    out.resize(m, n);
    match level {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        SimdLevel::Avx2 if avx2_ok() => {
            // SAFETY: AVX2+FMA confirmed by `avx2_ok`; slice lengths
            // asserted above.
            unsafe { avx2::matmul_q8_into(a.data(), scales, q, out.data_mut(), m, kdim, n) }
        }
        _ => scalar_matmul_q8(a.data(), scales, q, out.data_mut(), m, kdim, n),
    }
}

fn assert_matmul_shapes(a: &Tensor, b: &Tensor) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {}x{} @ {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
}

fn assert_matmul_nt_shapes(a: &Tensor, b: &Tensor) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt shape mismatch: {}x{} @ ({}x{})^T",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
}

/// Portable int8 kernel, blocked like [`Tensor::matmul_into`] with the
/// dequantization fused into the broadcast of the left operand.
fn scalar_matmul_q8(
    a: &[f32],
    scales: &[f32],
    q: &[i8],
    o: &mut [f32],
    m: usize,
    kdim: usize,
    n: usize,
) {
    const MR: usize = 2;
    const NR: usize = 16;
    let mut i = 0;
    while i < m {
        let ib = MR.min(m - i);
        let mut j = 0;
        while j < n {
            let jb = NR.min(n - j);
            let mut acc = [[0.0f32; NR]; MR];
            for k in 0..kdim {
                let s = scales[k];
                let q_row = &q[k * n + j..k * n + j + jb];
                for (r, acc_r) in acc.iter_mut().enumerate().take(ib) {
                    let a_ik = a[(i + r) * kdim + k] * s;
                    for (acc_rc, &qv) in acc_r.iter_mut().zip(q_row) {
                        *acc_rc += a_ik * qv as f32;
                    }
                }
            }
            for (r, acc_r) in acc.iter().enumerate().take(ib) {
                let row = i + r;
                o[row * n + j..row * n + j + jb].copy_from_slice(&acc_r[..jb]);
            }
            j += jb;
        }
        i += MR;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let data = (0..rows * cols)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-4 + 1e-4 * b.abs().max(a.abs())
    }

    #[test]
    fn scalar_dispatch_is_bitwise_identical_to_tensor_methods() {
        let a = pseudo_random(5, 7, 1);
        let b = pseudo_random(7, 9, 2);
        let mut via_kernel = Tensor::zeros(1, 1);
        matmul_into(SimdLevel::Scalar, &a, &b, &mut via_kernel);
        assert_eq!(via_kernel, a.matmul(&b));

        let bt = pseudo_random(9, 7, 3);
        matmul_nt_into(SimdLevel::Scalar, &a, &bt, &mut via_kernel);
        assert_eq!(via_kernel, a.matmul_nt(&bt));

        let mut x = pseudo_random(4, 6, 4);
        let mut reference = x.clone();
        gelu_inplace(SimdLevel::Scalar, &mut x);
        reference.map_inplace(gelu);
        assert_eq!(x, reference);

        let mut x = pseudo_random(4, 6, 5);
        let mut reference = x.clone();
        softmax_rows_inplace(SimdLevel::Scalar, &mut x);
        reference.softmax_rows_inplace();
        assert_eq!(x, reference);
    }

    #[test]
    fn detected_level_matches_any_simd_kernels_within_tolerance() {
        // On a SIMD host this exercises the real vector kernels; on a
        // scalar-only host (or under Miri) it degenerates to the bitwise
        // case above, which is exactly the promised fallback.
        let level = simd_level();
        let a = pseudo_random(9, 21, 10);
        let b = pseudo_random(21, 35, 11);
        let mut fast = Tensor::zeros(1, 1);
        matmul_into(level, &a, &b, &mut fast);
        let slow = a.matmul(&b);
        for (f, s) in fast.data().iter().zip(slow.data()) {
            assert!(close(*f, *s), "matmul {f} vs {s}");
        }

        let bt = pseudo_random(13, 21, 12);
        matmul_nt_into(level, &a, &bt, &mut fast);
        let mut slow = Tensor::zeros(1, 1);
        a.matmul_nt_into(&bt, &mut slow);
        for (f, s) in fast.data().iter().zip(slow.data()) {
            assert!(close(*f, *s), "matmul_nt {f} vs {s}");
        }

        let mut x = pseudo_random(6, 19, 13);
        let mut reference = x.clone();
        gelu_inplace(level, &mut x);
        reference.map_inplace(gelu);
        for (f, s) in x.data().iter().zip(reference.data()) {
            assert!(close(*f, *s), "gelu {f} vs {s}");
        }

        let mut x = pseudo_random(6, 19, 14);
        let mut reference = x.clone();
        softmax_rows_inplace(level, &mut x);
        reference.softmax_rows_inplace();
        for (f, s) in x.data().iter().zip(reference.data()) {
            assert!(close(*f, *s), "softmax {f} vs {s}");
        }

        let gamma: Vec<f32> = (0..19).map(|i| 1.0 + i as f32 * 0.01).collect();
        let beta: Vec<f32> = (0..19).map(|i| i as f32 * 0.02 - 0.1).collect();
        let mut x = pseudo_random(6, 19, 15);
        let mut reference = x.clone();
        layer_norm_rows(level, &mut x, &gamma, &beta, 1e-5);
        layer_norm_rows(SimdLevel::Scalar, &mut reference, &gamma, &beta, 1e-5);
        for (f, s) in x.data().iter().zip(reference.data()) {
            assert!(close(*f, *s), "layer_norm {f} vs {s}");
        }
    }

    #[test]
    fn q8_kernel_matches_dequantized_f32_matmul() {
        let a = pseudo_random(7, 23, 20);
        let w = pseudo_random(23, 18, 21);
        // Per-row max-abs quantization of `w`.
        let mut scales = Vec::new();
        let mut q = Vec::new();
        let mut dequant = Tensor::zeros(23, 18);
        for r in 0..23 {
            let row = w.row(r);
            let absmax = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let s = if absmax == 0.0 { 0.0 } else { absmax / 127.0 };
            scales.push(s);
            for (c, &v) in row.iter().enumerate() {
                let qv = if s == 0.0 { 0 } else { (v / s).round() as i8 };
                q.push(qv);
                dequant.row_mut(r)[c] = s * qv as f32;
            }
        }
        let expected = a.matmul(&dequant);
        for level in [SimdLevel::Scalar, simd_level()] {
            let mut got = Tensor::zeros(1, 1);
            matmul_q8_into(level, &a, &scales, &q, 18, &mut got);
            assert_eq!(got.shape(), expected.shape());
            for (g, e) in got.data().iter().zip(expected.data()) {
                assert!(close(*g, *e), "{level:?}: q8 {g} vs f32·dequant {e}");
            }
        }
    }

    #[test]
    fn unsupported_levels_fall_back_to_scalar() {
        // A level the host cannot run (e.g. Neon on x86, Avx2 on ARM)
        // must silently produce the scalar result, never crash.
        let foreign = match simd_level() {
            SimdLevel::Avx2 => SimdLevel::Neon,
            _ => SimdLevel::Avx2,
        };
        let a = pseudo_random(3, 5, 30);
        let b = pseudo_random(5, 4, 31);
        let mut out = Tensor::zeros(1, 1);
        matmul_into(foreign, &a, &b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[cfg(miri)]
    #[test]
    fn miri_forces_scalar_level() {
        assert_eq!(simd_level(), SimdLevel::Scalar);
    }
}
