//! AVX2 + FMA kernels (`x86_64`, runtime-dispatched).
//!
//! Every function here is `unsafe` and annotated with
//! `#[target_feature(enable = "avx2,fma")]`: the caller (the dispatch
//! layer in [`super`]) must confirm both features at runtime before
//! calling. Dimensions are passed explicitly and must match the slice
//! lengths (`a.len() == m * k`, etc.) — the dispatch layer derives them
//! from [`crate::Tensor`] shapes, so they hold by construction.
//!
//! Accumulation discipline: each output lane accumulates in ascending-`k`
//! order, exactly like the scalar blocked kernels, but multiply-adds are
//! fused (FMA) and reductions are 8-lane parallel, so results differ
//! from scalar by a few ULP. Column/row fringes that do not fill a
//! vector fall back to plain scalar arithmetic.

// Index-based loops mirror the register-tile math and keep the
// addressing obviously in-bounds next to the pointer arithmetic.
#![allow(clippy::needless_range_loop)]

use core::arch::x86_64::*;

/// Horizontal sum of all 8 lanes.
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn hsum(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps::<1>(v);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps::<1>(s, s));
    _mm_cvtss_f32(s)
}

/// Horizontal max of all 8 lanes.
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn hmax(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps::<1>(v);
    let m = _mm_max_ps(lo, hi);
    let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    let m = _mm_max_ss(m, _mm_shuffle_ps::<1>(m, m));
    _mm_cvtss_f32(m)
}

/// Vectorized `exp` (Cephes-style range reduction + degree-5
/// polynomial), accurate to ~1 ULP over the clamped domain.
#[target_feature(enable = "avx2,fma")]
unsafe fn exp_ps(x: __m256) -> __m256 {
    const EXP_HI: f32 = 88.376_26;
    const EXP_LO: f32 = -88.376_26;
    // ln(2) split into a high part exact in f32 and a low correction,
    // spelled as bit patterns so the split stays exact.
    const LN2_HI: f32 = f32::from_bits(0x3F31_8000); // 0.693359375
    const LN2_LO: f32 = f32::from_bits(0xB95E_8083); // -2.12194440e-4
    const P0: f32 = 1.987_569_1e-4;
    const P1: f32 = 1.398_199_9e-3;
    const P2: f32 = 8.333_452e-3;
    const P3: f32 = 4.166_579_5e-2;
    const P4: f32 = 1.666_666_6e-1;
    const P5: f32 = 0.5;
    let x = _mm256_min_ps(x, _mm256_set1_ps(EXP_HI));
    let x = _mm256_max_ps(x, _mm256_set1_ps(EXP_LO));
    let fx = _mm256_floor_ps(_mm256_fmadd_ps(
        x,
        _mm256_set1_ps(std::f32::consts::LOG2_E),
        _mm256_set1_ps(0.5),
    ));
    let x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(LN2_HI), x);
    let x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(LN2_LO), x);
    let mut y = _mm256_set1_ps(P0);
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P1));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P2));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P3));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P4));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P5));
    y = _mm256_fmadd_ps(y, _mm256_mul_ps(x, x), x);
    y = _mm256_add_ps(y, _mm256_set1_ps(1.0));
    // Scale by 2^floor: build the exponent bits directly.
    let n = _mm256_cvtps_epi32(fx);
    let n = _mm256_add_epi32(n, _mm256_set1_epi32(0x7f));
    let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(n));
    _mm256_mul_ps(y, pow2)
}

/// Vectorized tanh via `exp`: `tanh(x) = (1 - e^(-2x)) / (1 + e^(-2x))`.
/// The clamped `exp` keeps both extremes finite, so the quotient
/// saturates cleanly to ±1.
#[target_feature(enable = "avx2,fma")]
unsafe fn tanh_ps(x: __m256) -> __m256 {
    let e = exp_ps(_mm256_mul_ps(x, _mm256_set1_ps(-2.0)));
    let one = _mm256_set1_ps(1.0);
    _mm256_div_ps(_mm256_sub_ps(one, e), _mm256_add_ps(one, e))
}

/// `o = a @ b` for row-major `a: m×k`, `b: k×n`, `o: m×n`.
///
/// # Safety
///
/// AVX2+FMA must be available; slice lengths must match the dimensions.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn matmul_into(a: &[f32], b: &[f32], o: &mut [f32], m: usize, kdim: usize, n: usize) {
    debug_assert_eq!(a.len(), m * kdim);
    debug_assert_eq!(b.len(), kdim * n);
    debug_assert_eq!(o.len(), m * n);
    let mut i = 0;
    while i + 4 <= m {
        matmul_rows::<4>(a, b, o, i, kdim, n);
        i += 4;
    }
    while i < m {
        matmul_rows::<1>(a, b, o, i, kdim, n);
        i += 1;
    }
}

/// One `MR`-row band of the matmul: 16-wide tiles, then an 8-wide tile,
/// then a scalar column fringe.
#[target_feature(enable = "avx2,fma")]
unsafe fn matmul_rows<const MR: usize>(
    a: &[f32],
    b: &[f32],
    o: &mut [f32],
    i: usize,
    kdim: usize,
    n: usize,
) {
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let op = o.as_mut_ptr();
    let mut j = 0;
    while j + 16 <= n {
        let mut acc0 = [_mm256_setzero_ps(); MR];
        let mut acc1 = [_mm256_setzero_ps(); MR];
        for k in 0..kdim {
            let b0 = _mm256_loadu_ps(bp.add(k * n + j));
            let b1 = _mm256_loadu_ps(bp.add(k * n + j + 8));
            for r in 0..MR {
                let av = _mm256_set1_ps(*ap.add((i + r) * kdim + k));
                acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
                acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
            }
        }
        for r in 0..MR {
            _mm256_storeu_ps(op.add((i + r) * n + j), acc0[r]);
            _mm256_storeu_ps(op.add((i + r) * n + j + 8), acc1[r]);
        }
        j += 16;
    }
    while j + 8 <= n {
        let mut acc = [_mm256_setzero_ps(); MR];
        for k in 0..kdim {
            let b0 = _mm256_loadu_ps(bp.add(k * n + j));
            for r in 0..MR {
                let av = _mm256_set1_ps(*ap.add((i + r) * kdim + k));
                acc[r] = _mm256_fmadd_ps(av, b0, acc[r]);
            }
        }
        for r in 0..MR {
            _mm256_storeu_ps(op.add((i + r) * n + j), acc[r]);
        }
        j += 8;
    }
    while j < n {
        for r in 0..MR {
            let mut sum = 0.0f32;
            for k in 0..kdim {
                sum += *ap.add((i + r) * kdim + k) * *bp.add(k * n + j);
            }
            *op.add((i + r) * n + j) = sum;
        }
        j += 1;
    }
}

/// `o = a @ b^T` for row-major `a: m×k`, `b: n×k`, `o: m×n` — 8-lane
/// dot products over the rows of both operands, no transpose
/// materialized.
///
/// # Safety
///
/// AVX2+FMA must be available; slice lengths must match the dimensions.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn matmul_nt_into(a: &[f32], b: &[f32], o: &mut [f32], m: usize, kdim: usize, n: usize) {
    debug_assert_eq!(a.len(), m * kdim);
    debug_assert_eq!(b.len(), n * kdim);
    debug_assert_eq!(o.len(), m * n);
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let op = o.as_mut_ptr();
    for i in 0..m {
        let ar = ap.add(i * kdim);
        let mut j = 0;
        while j < n {
            let jb = (n - j).min(4);
            let mut acc = [_mm256_setzero_ps(); 4];
            let mut k = 0;
            while k + 8 <= kdim {
                let av = _mm256_loadu_ps(ar.add(k));
                for c in 0..jb {
                    let bv = _mm256_loadu_ps(bp.add((j + c) * kdim + k));
                    acc[c] = _mm256_fmadd_ps(av, bv, acc[c]);
                }
                k += 8;
            }
            for c in 0..jb {
                let mut sum = hsum(acc[c]);
                for kk in k..kdim {
                    sum += *ar.add(kk) * *bp.add((j + c) * kdim + kk);
                }
                *op.add(i * n + j + c) = sum;
            }
            j += jb;
        }
    }
}

/// Row-wise layer norm in place over `x: rows×cols`.
///
/// # Safety
///
/// AVX2+FMA must be available; `x.len() == rows * cols` and
/// `gamma.len() == beta.len() == cols`.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn layer_norm_rows(
    x: &mut [f32],
    rows: usize,
    cols: usize,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) {
    debug_assert_eq!(x.len(), rows * cols);
    debug_assert_eq!(gamma.len(), cols);
    debug_assert_eq!(beta.len(), cols);
    let gp = gamma.as_ptr();
    let bp = beta.as_ptr();
    for r in 0..rows {
        let p = x.as_mut_ptr().add(r * cols);
        let nf = cols as f32;

        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= cols {
            acc = _mm256_add_ps(acc, _mm256_loadu_ps(p.add(i)));
            i += 8;
        }
        let mut sum = hsum(acc);
        for j in i..cols {
            sum += *p.add(j);
        }
        let mean = sum / nf;

        let mv = _mm256_set1_ps(mean);
        let mut vacc = _mm256_setzero_ps();
        i = 0;
        while i + 8 <= cols {
            let d = _mm256_sub_ps(_mm256_loadu_ps(p.add(i)), mv);
            vacc = _mm256_fmadd_ps(d, d, vacc);
            i += 8;
        }
        let mut var = hsum(vacc);
        for j in i..cols {
            let d = *p.add(j) - mean;
            var += d * d;
        }
        var /= nf;
        let inv = 1.0 / (var + eps).sqrt();

        let iv = _mm256_set1_ps(inv);
        i = 0;
        while i + 8 <= cols {
            let d = _mm256_sub_ps(_mm256_loadu_ps(p.add(i)), mv);
            let xhat = _mm256_mul_ps(d, iv);
            let out = _mm256_fmadd_ps(xhat, _mm256_loadu_ps(gp.add(i)), _mm256_loadu_ps(bp.add(i)));
            _mm256_storeu_ps(p.add(i), out);
            i += 8;
        }
        for j in i..cols {
            let xhat = (*p.add(j) - mean) * inv;
            *p.add(j) = xhat * *gp.add(j) + *bp.add(j);
        }
    }
}

/// GELU elementwise in place (tanh form, same constants as
/// [`crate::tape::gelu`], tanh evaluated via the polynomial `exp`).
///
/// # Safety
///
/// AVX2+FMA must be available.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn gelu_inplace(x: &mut [f32]) {
    const C: f32 = 0.797_884_6; // sqrt(2/pi), as in the scalar gelu
    const A: f32 = 0.044_715;
    let n = x.len();
    let p = x.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(p.add(i));
        let v2 = _mm256_mul_ps(v, v);
        let inner = _mm256_fmadd_ps(_mm256_mul_ps(v2, v), _mm256_set1_ps(A), v);
        let t = tanh_ps(_mm256_mul_ps(inner, _mm256_set1_ps(C)));
        let half_v = _mm256_mul_ps(_mm256_set1_ps(0.5), v);
        let out = _mm256_mul_ps(half_v, _mm256_add_ps(t, _mm256_set1_ps(1.0)));
        _mm256_storeu_ps(p.add(i), out);
        i += 8;
    }
    for v in &mut x[i..] {
        *v = crate::tape::gelu(*v);
    }
}

/// Row-wise softmax in place over `x: rows×cols`, matching the scalar
/// semantics (max-subtract, exp, normalize; rows whose exp-sum is zero
/// are left unnormalized).
///
/// # Safety
///
/// AVX2+FMA must be available; `x.len() == rows * cols`.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn softmax_rows_inplace(x: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(x.len(), rows * cols);
    for r in 0..rows {
        let p = x.as_mut_ptr().add(r * cols);

        let mut mv = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut i = 0;
        while i + 8 <= cols {
            mv = _mm256_max_ps(mv, _mm256_loadu_ps(p.add(i)));
            i += 8;
        }
        let mut max = hmax(mv);
        for j in i..cols {
            max = max.max(*p.add(j));
        }

        let maxv = _mm256_set1_ps(max);
        let mut acc = _mm256_setzero_ps();
        i = 0;
        while i + 8 <= cols {
            let e = exp_ps(_mm256_sub_ps(_mm256_loadu_ps(p.add(i)), maxv));
            _mm256_storeu_ps(p.add(i), e);
            acc = _mm256_add_ps(acc, e);
            i += 8;
        }
        let mut sum = hsum(acc);
        for j in i..cols {
            let e = (*p.add(j) - max).exp();
            *p.add(j) = e;
            sum += e;
        }

        if sum > 0.0 {
            let sv = _mm256_set1_ps(sum);
            i = 0;
            while i + 8 <= cols {
                _mm256_storeu_ps(p.add(i), _mm256_div_ps(_mm256_loadu_ps(p.add(i)), sv));
                i += 8;
            }
            for j in i..cols {
                *p.add(j) /= sum;
            }
        }
    }
}

/// Quantized `o = a @ (scales ⊙ q)` for row-major `a: m×k`,
/// `q: k×n` int8 with one scale per `q` row; f32 accumulation.
///
/// # Safety
///
/// AVX2+FMA must be available; slice lengths must match the dimensions.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn matmul_q8_into(
    a: &[f32],
    scales: &[f32],
    q: &[i8],
    o: &mut [f32],
    m: usize,
    kdim: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * kdim);
    debug_assert_eq!(scales.len(), kdim);
    debug_assert_eq!(q.len(), kdim * n);
    debug_assert_eq!(o.len(), m * n);
    let mut i = 0;
    while i + 2 <= m {
        matmul_q8_rows::<2>(a, scales, q, o, i, kdim, n);
        i += 2;
    }
    while i < m {
        matmul_q8_rows::<1>(a, scales, q, o, i, kdim, n);
        i += 1;
    }
}

/// One `MR`-row band of the int8 matmul: 16-wide tiles (one 128-bit int8
/// load, sign-extended and converted to two f32 vectors), then an
/// 8-wide tile, then a scalar fringe.
#[target_feature(enable = "avx2,fma")]
unsafe fn matmul_q8_rows<const MR: usize>(
    a: &[f32],
    scales: &[f32],
    q: &[i8],
    o: &mut [f32],
    i: usize,
    kdim: usize,
    n: usize,
) {
    let ap = a.as_ptr();
    let sp = scales.as_ptr();
    let qp = q.as_ptr();
    let op = o.as_mut_ptr();
    let mut j = 0;
    while j + 16 <= n {
        let mut acc0 = [_mm256_setzero_ps(); MR];
        let mut acc1 = [_mm256_setzero_ps(); MR];
        for k in 0..kdim {
            let qv = _mm_loadu_si128(qp.add(k * n + j) as *const __m128i);
            let q0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(qv));
            let q1 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128::<8>(qv)));
            let s = *sp.add(k);
            for r in 0..MR {
                let av = _mm256_set1_ps(*ap.add((i + r) * kdim + k) * s);
                acc0[r] = _mm256_fmadd_ps(av, q0, acc0[r]);
                acc1[r] = _mm256_fmadd_ps(av, q1, acc1[r]);
            }
        }
        for r in 0..MR {
            _mm256_storeu_ps(op.add((i + r) * n + j), acc0[r]);
            _mm256_storeu_ps(op.add((i + r) * n + j + 8), acc1[r]);
        }
        j += 16;
    }
    while j + 8 <= n {
        let mut acc = [_mm256_setzero_ps(); MR];
        for k in 0..kdim {
            let qv = _mm_loadl_epi64(qp.add(k * n + j) as *const __m128i);
            let q0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(qv));
            let s = *sp.add(k);
            for r in 0..MR {
                let av = _mm256_set1_ps(*ap.add((i + r) * kdim + k) * s);
                acc[r] = _mm256_fmadd_ps(av, q0, acc[r]);
            }
        }
        for r in 0..MR {
            _mm256_storeu_ps(op.add((i + r) * n + j), acc[r]);
        }
        j += 8;
    }
    while j < n {
        for r in 0..MR {
            let mut sum = 0.0f32;
            for k in 0..kdim {
                let av = *ap.add((i + r) * kdim + k) * *sp.add(k);
                sum += av * *qp.add(k * n + j) as f32;
            }
            *op.add((i + r) * n + j) = sum;
        }
        j += 1;
    }
}
