//! NEON kernels (`aarch64`).
//!
//! NEON is part of the aarch64 baseline ISA, so unlike the AVX2 path no
//! runtime detection is needed — the dispatch layer selects this module
//! whenever the target architecture matches. Only the two matmul
//! kernels are vectorized here; the element-wise ops (layer norm, GELU,
//! softmax) fall back to the scalar reference in [`super`], which keeps
//! the untested-surface on non-x86 hardware small while still
//! accelerating the dominant cost.
//!
//! Same accumulation discipline as the AVX2 module: ascending-`k` per
//! output lane, fused multiply-adds, scalar fringes.

// Index-based loops mirror the register-tile math and keep the
// addressing obviously in-bounds next to the pointer arithmetic.
#![allow(clippy::needless_range_loop)]

use core::arch::aarch64::*;

/// `o = a @ b` for row-major `a: m×k`, `b: k×n`, `o: m×n`.
///
/// # Safety
///
/// Slice lengths must match the dimensions (`a.len() == m * k`,
/// `b.len() == k * n`, `o.len() == m * n`).
pub unsafe fn matmul_into(a: &[f32], b: &[f32], o: &mut [f32], m: usize, kdim: usize, n: usize) {
    debug_assert_eq!(a.len(), m * kdim);
    debug_assert_eq!(b.len(), kdim * n);
    debug_assert_eq!(o.len(), m * n);
    let mut i = 0;
    while i + 4 <= m {
        matmul_rows::<4>(a, b, o, i, kdim, n);
        i += 4;
    }
    while i < m {
        matmul_rows::<1>(a, b, o, i, kdim, n);
        i += 1;
    }
}

/// One `MR`-row band: 8-wide tiles (two `float32x4_t`), then a 4-wide
/// tile, then a scalar column fringe.
unsafe fn matmul_rows<const MR: usize>(
    a: &[f32],
    b: &[f32],
    o: &mut [f32],
    i: usize,
    kdim: usize,
    n: usize,
) {
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let op = o.as_mut_ptr();
    let mut j = 0;
    while j + 8 <= n {
        let mut acc0 = [vdupq_n_f32(0.0); MR];
        let mut acc1 = [vdupq_n_f32(0.0); MR];
        for k in 0..kdim {
            let b0 = vld1q_f32(bp.add(k * n + j));
            let b1 = vld1q_f32(bp.add(k * n + j + 4));
            for r in 0..MR {
                let av = *ap.add((i + r) * kdim + k);
                acc0[r] = vfmaq_n_f32(acc0[r], b0, av);
                acc1[r] = vfmaq_n_f32(acc1[r], b1, av);
            }
        }
        for r in 0..MR {
            vst1q_f32(op.add((i + r) * n + j), acc0[r]);
            vst1q_f32(op.add((i + r) * n + j + 4), acc1[r]);
        }
        j += 8;
    }
    while j + 4 <= n {
        let mut acc = [vdupq_n_f32(0.0); MR];
        for k in 0..kdim {
            let b0 = vld1q_f32(bp.add(k * n + j));
            for r in 0..MR {
                acc[r] = vfmaq_n_f32(acc[r], b0, *ap.add((i + r) * kdim + k));
            }
        }
        for r in 0..MR {
            vst1q_f32(op.add((i + r) * n + j), acc[r]);
        }
        j += 4;
    }
    while j < n {
        for r in 0..MR {
            let mut sum = 0.0f32;
            for k in 0..kdim {
                sum += *ap.add((i + r) * kdim + k) * *bp.add(k * n + j);
            }
            *op.add((i + r) * n + j) = sum;
        }
        j += 1;
    }
}

/// `o = a @ b^T` for row-major `a: m×k`, `b: n×k`, `o: m×n` — 4-lane
/// dot products over the rows of both operands.
///
/// # Safety
///
/// Slice lengths must match the dimensions.
pub unsafe fn matmul_nt_into(a: &[f32], b: &[f32], o: &mut [f32], m: usize, kdim: usize, n: usize) {
    debug_assert_eq!(a.len(), m * kdim);
    debug_assert_eq!(b.len(), n * kdim);
    debug_assert_eq!(o.len(), m * n);
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let op = o.as_mut_ptr();
    for i in 0..m {
        let ar = ap.add(i * kdim);
        let mut j = 0;
        while j < n {
            let jb = (n - j).min(4);
            let mut acc = [vdupq_n_f32(0.0); 4];
            let mut k = 0;
            while k + 4 <= kdim {
                let av = vld1q_f32(ar.add(k));
                for c in 0..jb {
                    let bv = vld1q_f32(bp.add((j + c) * kdim + k));
                    acc[c] = vfmaq_f32(acc[c], av, bv);
                }
                k += 4;
            }
            for c in 0..jb {
                let mut sum = vaddvq_f32(acc[c]);
                for kk in k..kdim {
                    sum += *ar.add(kk) * *bp.add((j + c) * kdim + kk);
                }
                *op.add(i * n + j + c) = sum;
            }
            j += jb;
        }
    }
}
