//! A dense, row-major 2-D `f32` tensor.
//!
//! Everything the BERT encoder needs is expressible over 2-D matrices
//! (sequences are `seq_len × d_model` matrices), so this crate deliberately
//! avoids an N-dimensional tensor: shapes stay auditable and the autograd
//! tape (see [`crate::tape`]) stays simple.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// A dense `rows × cols` matrix of `f32`, row-major.
///
/// # Examples
///
/// ```
/// use rebert_tensor::Tensor;
///
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data length mismatch");
        Tensor { rows, cols, data }
    }

    /// Creates a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(v: &[f32]) -> Self {
        Tensor::from_vec(1, v.len(), v.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// A row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self @ other`.
    ///
    /// Backed by the register-blocked kernel of [`Tensor::matmul_into`];
    /// accumulation per output element stays sequential in `k`, so results
    /// are deterministic and independent of the blocking factors.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self @ other` written into `out` (resized as
    /// needed, reusing its allocation). The hot path of the inference
    /// engine: no per-call allocation once `out`'s capacity is warm.
    ///
    /// The kernel processes `MR × NR` output tiles with the full `k`
    /// reduction kept innermost per tile, so each output element
    /// accumulates in plain ascending-`k` order (bit-identical to the
    /// naive triple loop) while the compiler holds the tile in registers.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize(self.rows, other.cols);
        const MR: usize = 2;
        const NR: usize = 16;
        let (m, kdim, n) = (self.rows, self.cols, other.cols);
        let a = &self.data;
        let b = &other.data;
        let o = &mut out.data;
        let mut i = 0;
        while i < m {
            let ib = MR.min(m - i);
            let mut j = 0;
            // Full tiles: every loop bound is a constant, so the `MR × NR`
            // accumulator lives in vector registers.
            if ib == MR {
                while j + NR <= n {
                    let mut acc = [[0.0f32; NR]; MR];
                    for k in 0..kdim {
                        let b_row: &[f32; NR] =
                            b[k * n + j..k * n + j + NR].try_into().expect("NR slice");
                        for (r, acc_r) in acc.iter_mut().enumerate() {
                            let a_ik = a[(i + r) * kdim + k];
                            for (acc_rc, &bv) in acc_r.iter_mut().zip(b_row) {
                                *acc_rc += a_ik * bv;
                            }
                        }
                    }
                    for (r, acc_r) in acc.iter().enumerate() {
                        let row = i + r;
                        o[row * n + j..row * n + j + NR].copy_from_slice(acc_r);
                    }
                    j += NR;
                }
            }
            // Edge tiles (right fringe and short bottom rows).
            while j < n {
                let jb = NR.min(n - j);
                let mut acc = [[0.0f32; NR]; MR];
                for k in 0..kdim {
                    let b_row = &b[k * n + j..k * n + j + jb];
                    for (r, acc_r) in acc.iter_mut().enumerate().take(ib) {
                        let a_ik = a[(i + r) * kdim + k];
                        for (c, &bv) in b_row.iter().enumerate() {
                            acc_r[c] += a_ik * bv;
                        }
                    }
                }
                for (r, acc_r) in acc.iter().enumerate().take(ib) {
                    let row = i + r;
                    o[row * n + j..row * n + j + jb].copy_from_slice(&acc_r[..jb]);
                }
                j += jb;
            }
            i += MR;
        }
    }

    /// Matrix product `self @ other^T`.
    ///
    /// Backed by the direct dot-product kernel
    /// [`Tensor::matmul_nt_into`]: both operands are traversed row-wise
    /// with no transpose materialized, so the wrapper allocates only the
    /// output. Each dot product accumulates in ascending-`k` order,
    /// bit-identical to the naive kernel (and to the historical
    /// transpose-then-matmul formulation, which kept the same
    /// accumulation order).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// Matrix product `self @ other^T` written into `out` (resized as
    /// needed, reusing its allocation).
    ///
    /// Both operands are traversed row-wise (unit stride), and output
    /// tiles of `MR × NR` dot products share each loaded operand row
    /// across the tile. Each dot product uses a single accumulator in
    /// ascending-`k` order, matching the naive kernel bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} @ ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize(self.rows, other.rows);
        const MR: usize = 4;
        const NR: usize = 4;
        let (m, kdim, n) = (self.rows, self.cols, other.rows);
        let a = &self.data;
        let b = &other.data;
        let o = &mut out.data;
        let mut i = 0;
        while i < m {
            let ib = MR.min(m - i);
            let mut j = 0;
            while j < n {
                let jb = NR.min(n - j);
                let mut acc = [[0.0f32; NR]; MR];
                for (r, acc_r) in acc.iter_mut().enumerate().take(ib) {
                    let a_row = &a[(i + r) * kdim..(i + r + 1) * kdim];
                    for (c, acc_rc) in acc_r.iter_mut().enumerate().take(jb) {
                        let b_row = &b[(j + c) * kdim..(j + c + 1) * kdim];
                        let mut sum = 0.0f32;
                        for (&av, &bv) in a_row.iter().zip(b_row) {
                            sum += av * bv;
                        }
                        *acc_rc = sum;
                    }
                }
                for (r, acc_r) in acc.iter().enumerate().take(ib) {
                    let row = i + r;
                    o[row * n + j..row * n + j + jb].copy_from_slice(&acc_r[..jb]);
                }
                j += jb;
            }
            i += MR;
        }
    }

    /// Matrix product `self^T @ other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.cols, other.cols);
        let n = other.cols;
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a_ki) in a_row.iter().enumerate() {
                if a_ki == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    out_row[j] += a_ki * b_row[j];
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// The transpose written into `out` (resized as needed, reusing its
    /// allocation).
    pub fn transpose_into(&self, out: &mut Tensor) {
        out.resize(self.cols, self.rows);
        for i in 0..self.rows {
            let src = self.row(i);
            for (j, &v) in src.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "mul shape mismatch");
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `c`.
    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|x| x * c)
    }

    /// Adds a `1 × cols` bias row to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols()`.
    pub fn add_bias(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.shape(), (1, self.cols), "bias shape mismatch");
        let mut out = self.clone();
        for i in 0..self.rows {
            for (j, v) in out.row_mut(i).iter_mut().enumerate() {
                *v += bias.data[j];
            }
        }
        out
    }

    /// Reshapes to `rows × cols`, reusing the existing allocation.
    ///
    /// Element values after a resize are unspecified (the inference
    /// scratch buffers always overwrite them); the only guarantee is that
    /// no reallocation happens when the new size fits the capacity.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Elementwise `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Adds a `1 × cols` bias row to every row in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols()`.
    pub fn add_bias_assign(&mut self, bias: &Tensor) {
        assert_eq!(bias.shape(), (1, self.cols), "bias shape mismatch");
        for i in 0..self.rows {
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (v, &b) in row.iter_mut().zip(&bias.data) {
                *v += b;
            }
        }
    }

    /// Multiplies every element by `c` in place.
    pub fn scale_assign(&mut self, c: f32) {
        for v in &mut self.data {
            *v *= c;
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Applies `f` elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise sums as a `1 × cols` row vector.
    pub fn col_sums(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for i in 0..self.rows {
            for (j, &v) in self.row(i).iter().enumerate() {
                out.data[j] += v;
            }
        }
        out
    }

    /// Row-wise softmax (numerically stabilized).
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        out.softmax_rows_inplace();
        out
    }

    /// Row-wise softmax in place (numerically stabilized).
    pub fn softmax_rows_inplace(&mut self) {
        for i in 0..self.rows {
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }

    /// Extracts columns `[start, start+len)` as a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn col_slice(&self, start: usize, len: usize) -> Tensor {
        let mut out = Tensor::zeros(self.rows, len);
        self.col_slice_into(start, len, &mut out);
        out
    }

    /// Extracts columns `[start, start+len)` into `out` (resized as
    /// needed, reusing its allocation).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn col_slice_into(&self, start: usize, len: usize, out: &mut Tensor) {
        assert!(start + len <= self.cols, "column slice out of bounds");
        out.resize(self.rows, len);
        for i in 0..self.rows {
            out.row_mut(i)
                .copy_from_slice(&self.row(i)[start..start + len]);
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Default for Tensor {
    /// An empty `0 × 0` tensor — the natural seed for scratch buffers
    /// that grow on first use.
    fn default() -> Self {
        Tensor::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>9.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[1.0, 0.0, 2.0], &[0.5, 1.0, -1.0]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let s = a.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
        }
        // Large values do not overflow (stabilized).
        assert!((s[(1, 0)] - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn add_bias_broadcasts() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bias = Tensor::row_vector(&[10.0, 20.0]);
        let out = a.add_bias(&bias);
        assert_eq!(out, Tensor::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
    }

    #[test]
    fn col_slice_extracts() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]]);
        let s = a.col_slice(1, 2);
        assert_eq!(s, Tensor::from_rows(&[&[2.0, 3.0], &[6.0, 7.0]]));
    }

    #[test]
    fn col_sums_accumulate() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.col_sums(), Tensor::row_vector(&[4.0, 6.0]));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_rows(&[&[1.0, -2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Tensor::from_rows(&[&[4.0, 2.0]]));
        assert_eq!(a.sub(&b), Tensor::from_rows(&[&[-2.0, -6.0]]));
        assert_eq!(a.mul(&b), Tensor::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(a.scale(2.0), Tensor::from_rows(&[&[2.0, -4.0]]));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    /// Reference triple-loop product for validating the blocked kernels.
    fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                for j in 0..b.cols() {
                    out[(i, j)] += a[(i, k)] * b[(k, j)];
                }
            }
        }
        out
    }

    /// Deterministic pseudo-random fill (no external RNG needed here).
    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let data = (0..rows * cols)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn blocked_matmul_matches_naive_bitwise() {
        // Odd sizes exercise every remainder path of the MR×NR tiling.
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (4, 16, 16), (5, 17, 19), (33, 9, 2)] {
            let a = pseudo_random(m, k, (m * 31 + k) as u64);
            let b = pseudo_random(k, n, (k * 31 + n) as u64);
            assert_eq!(a.matmul(&b), matmul_naive(&a, &b), "{m}x{k} @ {k}x{n}");
        }
    }

    #[test]
    fn blocked_matmul_nt_matches_naive_bitwise() {
        for (m, k, n) in [(1, 3, 1), (3, 5, 7), (4, 8, 4), (5, 17, 19), (2, 9, 33)] {
            let a = pseudo_random(m, k, (m + k) as u64);
            let b = pseudo_random(n, k, (n * 7 + k) as u64);
            assert_eq!(
                a.matmul_nt(&b),
                matmul_naive(&a, &b.transpose()),
                "{m}x{k} @ ({n}x{k})^T"
            );
            // The scratch-friendly dot-product kernel agrees bitwise with
            // the transpose-and-block path.
            let mut out = Tensor::zeros(0, 0);
            a.matmul_nt_into(&b, &mut out);
            assert_eq!(out, a.matmul_nt(&b), "nt_into vs nt {m}x{k}x{n}");
        }
    }

    #[test]
    fn into_variants_reuse_allocations() {
        let a = pseudo_random(6, 5, 1);
        let b = pseudo_random(5, 9, 2);
        let mut out = Tensor::zeros(100, 100); // larger: capacity is reused
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        let mut out_nt = Tensor::zeros(1, 1); // smaller: grows in place
        a.matmul_nt_into(&a, &mut out_nt);
        assert_eq!(out_nt, a.matmul_nt(&a));
        let mut slice = Tensor::zeros(2, 2);
        a.col_slice_into(1, 3, &mut slice);
        assert_eq!(slice, a.col_slice(1, 3));
    }

    #[test]
    fn inplace_ops_match_pure_ops() {
        let a = pseudo_random(4, 6, 3);
        let b = pseudo_random(4, 6, 4);
        let bias = pseudo_random(1, 6, 5);

        let mut t = a.clone();
        t.add_assign(&b);
        assert_eq!(t, a.add(&b));

        let mut t = a.clone();
        t.add_bias_assign(&bias);
        assert_eq!(t, a.add_bias(&bias));

        let mut t = a.clone();
        t.scale_assign(0.37);
        assert_eq!(t, a.scale(0.37));

        let mut t = a.clone();
        t.map_inplace(|x| x.tanh());
        assert_eq!(t, a.map(f32::tanh));

        let mut t = a.clone();
        t.softmax_rows_inplace();
        assert_eq!(t, a.softmax_rows());
    }

    #[test]
    fn resize_reshapes_and_preserves_capacity() {
        let mut t = Tensor::zeros(8, 8);
        let cap = t.data.capacity();
        t.resize(2, 3);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.len(), 6);
        assert_eq!(t.data.capacity(), cap, "shrinking must not reallocate");
    }

    #[test]
    fn serde_round_trip() {
        let a = Tensor::from_rows(&[&[1.5, -2.5]]);
        let js = serde_json::to_string(&a).unwrap();
        let back: Tensor = serde_json::from_str(&js).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Tensor::zeros(2, 2);
        assert!(!a.to_string().is_empty());
    }
}
