//! A dense, row-major 2-D `f32` tensor.
//!
//! Everything the BERT encoder needs is expressible over 2-D matrices
//! (sequences are `seq_len × d_model` matrices), so this crate deliberately
//! avoids an N-dimensional tensor: shapes stay auditable and the autograd
//! tape (see [`crate::tape`]) stays simple.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// A dense `rows × cols` matrix of `f32`, row-major.
///
/// # Examples
///
/// ```
/// use rebert_tensor::Tensor;
///
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data length mismatch");
        Tensor { rows, cols, data }
    }

    /// Creates a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(v: &[f32]) -> Self {
        Tensor::from_vec(1, v.len(), v.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// A row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self @ other`.
    ///
    /// Uses the cache-friendly i-k-j loop order; adequate for the model
    /// sizes this workspace trains (hundreds of columns).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * n..(k + 1) * n];
                for j in 0..n {
                    out_row[j] += a_ik * b_row[j];
                }
            }
        }
        out
    }

    /// Matrix product `self @ other^T` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} @ ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += a_row[k] * b_row[k];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Matrix product `self^T @ other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.cols, other.cols);
        let n = other.cols;
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a_ki) in a_row.iter().enumerate() {
                if a_ki == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    out_row[j] += a_ki * b_row[j];
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "mul shape mismatch");
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `c`.
    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|x| x * c)
    }

    /// Adds a `1 × cols` bias row to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols()`.
    pub fn add_bias(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.shape(), (1, self.cols), "bias shape mismatch");
        let mut out = self.clone();
        for i in 0..self.rows {
            for (j, v) in out.row_mut(i).iter_mut().enumerate() {
                *v += bias.data[j];
            }
        }
        out
    }

    /// Applies `f` elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise sums as a `1 × cols` row vector.
    pub fn col_sums(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for i in 0..self.rows {
            for (j, &v) in self.row(i).iter().enumerate() {
                out.data[j] += v;
            }
        }
        out
    }

    /// Row-wise softmax (numerically stabilized).
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for i in 0..self.rows {
            let row = out.row_mut(i);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Extracts columns `[start, start+len)` as a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn col_slice(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.cols, "column slice out of bounds");
        let mut out = Tensor::zeros(self.rows, len);
        for i in 0..self.rows {
            out.row_mut(i)
                .copy_from_slice(&self.row(i)[start..start + len]);
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>9.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[1.0, 0.0, 2.0], &[0.5, 1.0, -1.0]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let s = a.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
        }
        // Large values do not overflow (stabilized).
        assert!((s[(1, 0)] - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn add_bias_broadcasts() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bias = Tensor::row_vector(&[10.0, 20.0]);
        let out = a.add_bias(&bias);
        assert_eq!(out, Tensor::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
    }

    #[test]
    fn col_slice_extracts() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]]);
        let s = a.col_slice(1, 2);
        assert_eq!(s, Tensor::from_rows(&[&[2.0, 3.0], &[6.0, 7.0]]));
    }

    #[test]
    fn col_sums_accumulate() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.col_sums(), Tensor::row_vector(&[4.0, 6.0]));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_rows(&[&[1.0, -2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Tensor::from_rows(&[&[4.0, 2.0]]));
        assert_eq!(a.sub(&b), Tensor::from_rows(&[&[-2.0, -6.0]]));
        assert_eq!(a.mul(&b), Tensor::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(a.scale(2.0), Tensor::from_rows(&[&[2.0, -4.0]]));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    fn serde_round_trip() {
        let a = Tensor::from_rows(&[&[1.5, -2.5]]);
        let js = serde_json::to_string(&a).unwrap();
        let back: Tensor = serde_json::from_str(&js).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Tensor::zeros(2, 2);
        assert!(!a.to_string().is_empty());
    }
}
