//! API-contract tests for the tensor substrate: thread-safety markers,
//! shape validation, and numeric edge cases.

use rebert_tensor::{gelu, gelu_grad, sigmoid, Tape, Tensor};

#[test]
fn tensor_and_tape_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Tensor>();
    assert_send_sync::<Tape>();
}

#[test]
fn scalar_activation_reference_values() {
    assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    assert!(sigmoid(20.0) > 0.999_999);
    assert!(sigmoid(-20.0) < 1e-6);
    // GELU anchors: gelu(0) = 0; gelu(x) → x for large x; odd-ish shape.
    assert_eq!(gelu(0.0), 0.0);
    assert!((gelu(6.0) - 6.0).abs() < 1e-3);
    assert!(gelu(-6.0).abs() < 1e-3);
    // Derivative at 0 is 0.5.
    assert!((gelu_grad(0.0) - 0.5).abs() < 1e-6);
}

#[test]
fn softmax_handles_uniform_and_extreme_rows() {
    let t = Tensor::from_rows(&[&[0.0, 0.0, 0.0], &[-1e30, 0.0, -1e30], &[1e30, 1e30, 1e30]]);
    let s = t.softmax_rows();
    for i in 0..3 {
        let sum: f32 = s.row(i).iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
        assert!(s.row(i).iter().all(|v| v.is_finite()));
    }
    assert!((s[(1, 1)] - 1.0).abs() < 1e-6);
}

#[test]
#[should_panic(expected = "shape mismatch")]
fn add_rejects_shape_mismatch() {
    let a = Tensor::zeros(2, 3);
    let b = Tensor::zeros(3, 2);
    let _ = a.add(&b);
}

#[test]
#[should_panic(expected = "bias shape mismatch")]
fn add_bias_rejects_bad_bias() {
    let a = Tensor::zeros(2, 3);
    let bias = Tensor::zeros(1, 2);
    let _ = a.add_bias(&bias);
}

#[test]
#[should_panic(expected = "out of bounds")]
fn col_slice_rejects_overflow() {
    let a = Tensor::zeros(2, 3);
    let _ = a.col_slice(2, 2);
}

#[test]
#[should_panic(expected = "scalar")]
fn backward_requires_scalar_loss() {
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::zeros(2, 2));
    let _ = tape.backward(x);
}

#[test]
fn backward_skips_nodes_off_the_loss_path() {
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::from_rows(&[&[1.0]]));
    let unused = tape.leaf(Tensor::from_rows(&[&[9.0]]));
    let dead_branch = tape.mul(unused, unused);
    let loss = tape.mean_all(x);
    let grads = tape.backward(loss);
    assert!(grads[x.index()].is_some());
    assert!(grads[unused.index()].is_none());
    assert!(grads[dead_branch.index()].is_none());
}

#[test]
fn gather_repeated_rows_accumulate_gradient() {
    let mut tape = Tape::new();
    let table = tape.leaf(Tensor::from_rows(&[&[1.0], &[2.0]]));
    let g = tape.gather(table, &[0, 0, 0, 1]);
    let loss = tape.mean_all(g);
    let grads = tape.backward(loss);
    let dt = grads[table.index()].as_ref().expect("on path");
    // Row 0 selected three times: 3 × 1/4; row 1 once: 1/4.
    assert!((dt[(0, 0)] - 0.75).abs() < 1e-6);
    assert!((dt[(1, 0)] - 0.25).abs() < 1e-6);
}

#[test]
fn diamond_graph_accumulates_both_paths() {
    // y = x*x + x*x: dy/dx = 4x.
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::from_rows(&[&[3.0]]));
    let a = tape.mul(x, x);
    let b = tape.mul(x, x);
    let y = tape.add(a, b);
    let loss = tape.mean_all(y);
    let grads = tape.backward(loss);
    let dx = grads[x.index()].as_ref().expect("on path");
    assert!((dx.data()[0] - 12.0).abs() < 1e-5);
}

#[test]
fn values_are_queryable_after_backward() {
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::from_rows(&[&[2.0]]));
    let y = tape.sigmoid(x);
    let loss = tape.mean_all(y);
    let _ = tape.backward(loss);
    assert!((tape.value(y).data()[0] - sigmoid(2.0)).abs() < 1e-7);
    assert_eq!(tape.len(), 3);
}
