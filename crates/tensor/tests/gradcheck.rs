//! Finite-difference gradient checks for every tape operation.
//!
//! Each check builds the same computation twice: once on a tape (analytic
//! gradient) and many times with perturbed inputs (numeric gradient), and
//! compares them elementwise.

use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rebert_tensor::{normal, Tape, Tensor, VarId};

/// Central finite-difference gradient of `f` with respect to `input`,
/// where `f` maps the input tensor to a scalar.
fn numeric_grad(input: &Tensor, f: impl Fn(&Tensor) -> f32) -> Tensor {
    const H: f32 = 1e-2;
    let mut grad = Tensor::zeros(input.rows(), input.cols());
    for i in 0..input.len() {
        let mut plus = input.clone();
        plus.data_mut()[i] += H;
        let mut minus = input.clone();
        minus.data_mut()[i] -= H;
        grad.data_mut()[i] = (f(&plus) - f(&minus)) / (2.0 * H);
    }
    grad
}

/// Checks analytic vs numeric gradients for a graph described by
/// `build`: it receives a tape and the list of leaf VarIds (one per input
/// tensor) and must return the scalar loss VarId.
fn check(inputs: &[Tensor], build: impl Fn(&mut Tape, &[VarId]) -> VarId, tol: f32) {
    // Analytic.
    let mut tape = Tape::new();
    let vars: Vec<VarId> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
    let loss = build(&mut tape, &vars);
    let grads = tape.backward(loss);

    for (pi, input) in inputs.iter().enumerate() {
        let numeric = numeric_grad(input, |perturbed| {
            let mut t = Tape::new();
            let vars: Vec<VarId> = inputs
                .iter()
                .enumerate()
                .map(|(i, orig)| {
                    t.leaf(if i == pi {
                        perturbed.clone()
                    } else {
                        orig.clone()
                    })
                })
                .collect();
            let l = build(&mut t, &vars);
            t.value(l).data()[0]
        });
        let analytic = grads[vars[pi].index()]
            .clone()
            .unwrap_or_else(|| Tensor::zeros(input.rows(), input.cols()));
        let diff = analytic.max_abs_diff(&numeric);
        assert!(
            diff < tol,
            "input {pi}: max grad diff {diff} (analytic {analytic}, numeric {numeric})"
        );
    }
}

fn rng() -> ChaCha20Rng {
    ChaCha20Rng::seed_from_u64(0xC0FFEE)
}

#[test]
fn matmul_grads() {
    let mut r = rng();
    let a = normal(&mut r, 3, 4, 0.5);
    let b = normal(&mut r, 4, 2, 0.5);
    check(
        &[a, b],
        |t, v| {
            let c = t.matmul(v[0], v[1]);
            t.mean_all(c)
        },
        1e-3,
    );
}

#[test]
fn add_and_bias_grads() {
    let mut r = rng();
    let a = normal(&mut r, 3, 3, 0.5);
    let b = normal(&mut r, 3, 3, 0.5);
    let bias = normal(&mut r, 1, 3, 0.5);
    check(
        &[a.clone(), b],
        |t, v| {
            let c = t.add(v[0], v[1]);
            t.mean_all(c)
        },
        1e-3,
    );
    check(
        &[a, bias],
        |t, v| {
            let c = t.add_bias(v[0], v[1]);
            t.mean_all(c)
        },
        1e-3,
    );
}

#[test]
fn mul_scale_grads() {
    let mut r = rng();
    let a = normal(&mut r, 2, 5, 0.5);
    let b = normal(&mut r, 2, 5, 0.5);
    check(
        &[a.clone(), b],
        |t, v| {
            let c = t.mul(v[0], v[1]);
            t.mean_all(c)
        },
        1e-3,
    );
    check(
        &[a],
        |t, v| {
            let c = t.scale(v[0], -2.5);
            t.mean_all(c)
        },
        1e-3,
    );
}

#[test]
fn activation_grads() {
    let mut r = rng();
    let a = normal(&mut r, 3, 4, 1.0);
    for act in 0..4 {
        check(
            std::slice::from_ref(&a),
            move |t, v| {
                let y = match act {
                    0 => t.gelu(v[0]),
                    1 => t.tanh(v[0]),
                    2 => t.sigmoid(v[0]),
                    _ => {
                        // Shift away from the ReLU kink to keep finite
                        // differences meaningful.
                        let one = t.leaf(Tensor::full(3, 4, 0.35));
                        let shifted = t.add(v[0], one);
                        t.relu(shifted)
                    }
                };
                t.mean_all(y)
            },
            2e-3,
        );
    }
}

#[test]
fn softmax_grads() {
    let mut r = rng();
    let a = normal(&mut r, 3, 5, 1.0);
    let w = normal(&mut r, 3, 5, 1.0);
    // Weighted sum to make the loss sensitive to all entries.
    check(
        &[a, w.clone()],
        |t, v| {
            let s = t.softmax_rows(v[0]);
            let weighted = t.mul(s, v[1]);
            t.mean_all(weighted)
        },
        2e-3,
    );
}

#[test]
fn layer_norm_grads() {
    let mut r = rng();
    let x = normal(&mut r, 3, 6, 1.0);
    let gamma = normal(&mut r, 1, 6, 0.5);
    let beta = normal(&mut r, 1, 6, 0.5);
    let w = normal(&mut r, 3, 6, 1.0);
    check(
        &[x, gamma, beta, w],
        |t, v| {
            let y = t.layer_norm(v[0], v[1], v[2], 1e-5);
            let weighted = t.mul(y, v[3]);
            t.mean_all(weighted)
        },
        5e-3,
    );
}

#[test]
fn slicing_grads() {
    let mut r = rng();
    let a = normal(&mut r, 3, 8, 0.5);
    check(
        std::slice::from_ref(&a),
        |t, v| {
            let s = t.col_slice(v[0], 2, 4);
            t.mean_all(s)
        },
        1e-3,
    );
    check(
        std::slice::from_ref(&a),
        |t, v| {
            let s = t.row_slice(v[0], 1);
            t.mean_all(s)
        },
        1e-3,
    );
    let b = normal(&mut r, 3, 2, 0.5);
    check(
        &[a, b],
        |t, v| {
            let c = t.col_concat(&[v[0], v[1]]);
            t.mean_all(c)
        },
        1e-3,
    );
}

#[test]
fn gather_grads() {
    let mut r = rng();
    let table = normal(&mut r, 6, 4, 0.5);
    check(
        &[table],
        |t, v| {
            // Repeated index exercises gradient accumulation.
            let g = t.gather(v[0], &[1, 3, 1]);
            t.mean_all(g)
        },
        1e-3,
    );
}

#[test]
fn bce_with_logits_grads() {
    let mut r = rng();
    let logits = normal(&mut r, 4, 1, 1.0);
    let targets = Tensor::from_vec(4, 1, vec![1.0, 0.0, 1.0, 0.0]);
    check(
        &[logits],
        move |t, v| t.bce_with_logits(v[0], targets.clone()),
        2e-3,
    );
}

#[test]
fn two_layer_mlp_composite() {
    // End-to-end: x -> Linear -> GELU -> Linear -> BCE.
    let mut r = rng();
    let x = normal(&mut r, 2, 6, 0.7);
    let w1 = normal(&mut r, 6, 5, 0.5);
    let b1 = normal(&mut r, 1, 5, 0.2);
    let w2 = normal(&mut r, 5, 1, 0.5);
    let b2 = normal(&mut r, 1, 1, 0.2);
    let targets = Tensor::from_vec(2, 1, vec![1.0, 0.0]);
    check(
        &[x, w1, b1, w2, b2],
        move |t, v| {
            let h = t.matmul(v[0], v[1]);
            let h = t.add_bias(h, v[2]);
            let h = t.gelu(h);
            let z = t.matmul(h, v[3]);
            let z = t.add_bias(z, v[4]);
            t.bce_with_logits(z, targets.clone())
        },
        3e-3,
    );
}

#[test]
fn attention_shaped_composite() {
    // A single attention head: softmax(Q K^T / sqrt(d)) V.
    let mut r = rng();
    let x = normal(&mut r, 4, 6, 0.6);
    let wq = normal(&mut r, 6, 3, 0.5);
    let wk = normal(&mut r, 6, 3, 0.5);
    let wv = normal(&mut r, 6, 3, 0.5);
    check(
        &[x, wq, wk, wv],
        |t, v| {
            let q = t.matmul(v[0], v[1]);
            let k = t.matmul(v[0], v[2]);
            let val = t.matmul(v[0], v[3]);
            let scores = t.matmul_nt(q, k);
            let scaled = t.scale(scores, 1.0 / (3.0f32).sqrt());
            let probs = t.softmax_rows(scaled);
            let ctx = t.matmul(probs, val);
            t.mean_all(ctx)
        },
        3e-3,
    );
}

#[test]
fn matmul_nt_grads() {
    let mut r = rng();
    let a = normal(&mut r, 3, 4, 0.5);
    let b = normal(&mut r, 5, 4, 0.5);
    check(
        &[a, b],
        |t, v| {
            let c = t.matmul_nt(v[0], v[1]);
            t.mean_all(c)
        },
        1e-3,
    );
}
