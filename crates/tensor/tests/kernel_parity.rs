//! Property tests for the runtime-dispatched kernel layer: across
//! randomly shaped (deliberately awkward — remainder tiles, single
//! rows/columns) operands,
//!
//! * the `Scalar` dispatch arm is **bitwise-identical** to the plain
//!   `Tensor` methods and to a naive triple loop,
//! * the host's best SIMD level is tolerance-equivalent to scalar,
//! * the int8 kernel matches an f32 matmul against the dequantized
//!   codes exactly in shape and closely in value.
//!
//! Shapes run up to ~48 in every dimension so the AVX2 8-lane /
//! MR×NR-tile remainders (widths 1..7) are all exercised.

use proptest::prelude::*;
use rebert_tensor::kernels::{
    self, gelu_inplace, layer_norm_rows, matmul_into, matmul_nt_into, matmul_q8_into,
    softmax_rows_inplace,
};
use rebert_tensor::{simd_level, SimdLevel, Tensor};

/// Deterministic pseudo-random matrix entries in roughly [-2, 2] with a
/// sprinkle of exact zeros (softmax guard rows, quantization edge).
fn matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bits = (state >> 33) as u32;
            if bits.is_multiple_of(17) {
                0.0
            } else {
                (bits % 4001) as f32 / 1000.0 - 2.0
            }
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Naive triple-loop `a @ b` — the ground truth the blocked scalar
/// kernel must reproduce bit for bit (ascending-`k` accumulation).
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.row(i)[p] * b.row(p)[j];
            }
            out.row_mut(i)[j] = acc;
        }
    }
    out
}

fn assert_bitwise_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

fn assert_close(a: &Tensor, b: &Tensor, abs: f32, rel: f32, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        let tol = abs + rel * y.abs();
        assert!(
            (x - y).abs() <= tol,
            "{what}: element {i}: {x} vs {y} (tol {tol})"
        );
    }
}

/// Symmetric per-row absmax quantization matching `rebert-nn`'s scheme.
fn quantize_rows(w: &Tensor) -> (Vec<f32>, Vec<i8>) {
    let (rows, cols) = w.shape();
    let mut scales = Vec::with_capacity(rows);
    let mut codes = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        let absmax = w.row(r).iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let scale = if absmax == 0.0 { 0.0 } else { absmax / 127.0 };
        scales.push(scale);
        for &v in w.row(r) {
            codes.push(if scale == 0.0 {
                0
            } else {
                (v / scale).round() as i8
            });
        }
    }
    (scales, codes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scalar dispatch == Tensor methods == naive loops, bit for bit.
    #[test]
    fn scalar_matmul_is_bitwise_naive(
        m in 1usize..48, k in 1usize..48, n in 1usize..48, seed in 0u64..1000,
    ) {
        let a = matrix(m, k, seed);
        let b = matrix(k, n, seed ^ 0xb0b);
        let bt = matrix(n, k, seed ^ 0xcafe);

        let mut out = Tensor::zeros(1, 1);
        matmul_into(SimdLevel::Scalar, &a, &b, &mut out);
        assert_bitwise_eq(&out, &naive_matmul(&a, &b), "matmul scalar vs naive");
        assert_bitwise_eq(&out, &a.matmul(&b), "matmul scalar vs Tensor");

        matmul_nt_into(SimdLevel::Scalar, &a, &bt, &mut out);
        assert_bitwise_eq(&out, &naive_matmul(&a, &bt.transpose()), "matmul_nt scalar vs naive");
        assert_bitwise_eq(&out, &a.matmul_nt(&bt), "matmul_nt scalar vs Tensor");
    }

    /// The host's best SIMD level agrees with scalar within FMA-reassociation
    /// tolerance, for matmul and matmul_nt across remainder-tile shapes.
    #[test]
    fn simd_matmul_tracks_scalar(
        m in 1usize..48, k in 1usize..48, n in 1usize..48, seed in 0u64..1000,
    ) {
        let level = simd_level();
        let a = matrix(m, k, seed);
        let b = matrix(k, n, seed ^ 0xb0b);
        let bt = matrix(n, k, seed ^ 0xcafe);

        let mut simd = Tensor::zeros(1, 1);
        let mut scalar = Tensor::zeros(1, 1);
        matmul_into(level, &a, &b, &mut simd);
        matmul_into(SimdLevel::Scalar, &a, &b, &mut scalar);
        assert_close(&simd, &scalar, 1e-4, 1e-5, "matmul simd vs scalar");

        matmul_nt_into(level, &a, &bt, &mut simd);
        matmul_nt_into(SimdLevel::Scalar, &a, &bt, &mut scalar);
        assert_close(&simd, &scalar, 1e-4, 1e-5, "matmul_nt simd vs scalar");
    }

    /// Row-wise kernels: the SIMD arms of layer-norm, GELU, and softmax
    /// track their scalar (bit-pinned elsewhere) counterparts.
    #[test]
    fn simd_rowwise_kernels_track_scalar(
        rows in 1usize..24, cols in 1usize..48, seed in 0u64..1000,
    ) {
        let level = simd_level();
        let base = matrix(rows, cols, seed);
        let gamma = matrix(1, cols, seed ^ 1).data().to_vec();
        let beta = matrix(1, cols, seed ^ 2).data().to_vec();

        let mut simd = base.clone();
        let mut scalar = base.clone();
        layer_norm_rows(level, &mut simd, &gamma, &beta, 1e-5);
        layer_norm_rows(SimdLevel::Scalar, &mut scalar, &gamma, &beta, 1e-5);
        assert_close(&simd, &scalar, 1e-4, 1e-4, "layer_norm");

        let mut simd = base.clone();
        let mut scalar = base.clone();
        gelu_inplace(level, &mut simd);
        gelu_inplace(SimdLevel::Scalar, &mut scalar);
        assert_close(&simd, &scalar, 1e-5, 1e-5, "gelu");

        let mut simd = base.clone();
        let mut scalar = base.clone();
        softmax_rows_inplace(level, &mut simd);
        softmax_rows_inplace(SimdLevel::Scalar, &mut scalar);
        assert_close(&simd, &scalar, 1e-5, 1e-5, "softmax");
    }

    /// The int8 kernel equals an f32 matmul against the *dequantized*
    /// weights — scalar arm bitwise, SIMD arm within tolerance — so the
    /// only error int8 introduces is the rounding in the codes.
    #[test]
    fn q8_matmul_matches_dequantized_f32(
        m in 1usize..24, k in 1usize..48, n in 1usize..48, seed in 0u64..1000,
    ) {
        let a = matrix(m, k, seed);
        let w = matrix(k, n, seed ^ 0xdead);
        let (scales, codes) = quantize_rows(&w);
        // Dequantize the way matmul_q8 defines: w'[p][j] = scales[p] * q[p][j].
        let deq = Tensor::from_vec(
            k,
            n,
            codes
                .iter()
                .enumerate()
                .map(|(i, &c)| scales[i / n] * c as f32)
                .collect(),
        );

        // Scalar q8: fold-into-a ordering differs from a plain matmul,
        // so compare against the same fold done in f32.
        let mut q8 = Tensor::zeros(1, 1);
        matmul_q8_into(SimdLevel::Scalar, &a, &scales, &codes, n, &mut q8);
        assert_close(&q8, &naive_matmul(&a, &deq), 1e-4, 1e-4, "q8 scalar vs dequantized");

        let mut q8_simd = Tensor::zeros(1, 1);
        matmul_q8_into(simd_level(), &a, &scales, &codes, n, &mut q8_simd);
        assert_close(&q8_simd, &q8, 1e-4, 1e-4, "q8 simd vs q8 scalar");
    }
}

#[test]
fn unsupported_levels_fall_back_to_scalar_bitwise() {
    // Requesting a level the host/arch cannot run must silently produce
    // the scalar result, never garbage: the cross-arch enum values are
    // always safe to pass.
    let a = matrix(5, 7, 3);
    let b = matrix(7, 4, 4);
    let mut scalar = Tensor::zeros(1, 1);
    matmul_into(SimdLevel::Scalar, &a, &b, &mut scalar);
    for level in [SimdLevel::Avx2, SimdLevel::Neon] {
        if level == simd_level() {
            continue;
        }
        let mut out = Tensor::zeros(1, 1);
        matmul_into(level, &a, &b, &mut out);
        assert_bitwise_eq(&out, &scalar, "foreign-level fallback");
    }
}

#[test]
fn dispatch_reports_a_single_consistent_level() {
    // `simd_level()` is cached; repeated calls agree and availability
    // matches the level.
    let first = simd_level();
    assert_eq!(first, simd_level());
    assert_eq!(kernels::simd_available(), first != SimdLevel::Scalar);
}
