//! End-to-end structural word recovery: trees → similarity matrix →
//! threshold grouping.

use std::time::{Duration, Instant};

use rebert_netlist::{binarize, BitTree, Netlist};
use serde::{Deserialize, Serialize};

use crate::similarity::tree_similarity;

/// How the grouping threshold is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Threshold {
    /// `max(similarity matrix) / 3` — the same adaptive rule ReBERT uses,
    /// for an apples-to-apples comparison.
    Adaptive,
    /// A fixed cut-off in `[0, 1]`.
    Fixed(f64),
}

/// Configuration of the structural baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructuralConfig {
    /// Fan-in back-trace depth (match the ReBERT `k` under comparison).
    pub k_levels: usize,
    /// Grouping threshold policy.
    pub threshold: Threshold,
    /// Threads for the pairwise similarity sweep (`0` = all available
    /// cores). The similarity matrix is identical for any thread count.
    #[serde(default)]
    pub threads: usize,
}

impl Default for StructuralConfig {
    fn default() -> Self {
        StructuralConfig {
            k_levels: 6,
            threshold: Threshold::Adaptive,
            threads: 0,
        }
    }
}

/// Telemetry from one structural recovery run.
#[derive(Debug, Clone, PartialEq)]
pub struct StructuralStats {
    /// Bit pairs compared.
    pub pairs: usize,
    /// The threshold actually used.
    pub threshold_used: f64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// The structural baseline's recovery result.
#[derive(Debug, Clone)]
pub struct StructuralRecovery {
    /// `assignment[i]` = word id of bit `i` (dense ids).
    pub assignment: Vec<usize>,
    /// The raw pairwise similarity matrix (row-major upper triangle by
    /// `(i, j)` with `i < j`).
    pub similarities: Vec<f64>,
    /// Run telemetry.
    pub stats: StructuralStats,
}

/// Recovers word groupings from a netlist with pure structural matching.
///
/// # Examples
///
/// ```
/// use rebert_circuits::{generate, Profile};
/// use rebert_structural::{recover_words, StructuralConfig};
///
/// let c = generate(&Profile::new("demo", 100, 12, 3), 5);
/// let rec = recover_words(&c.netlist, &StructuralConfig::default());
/// assert_eq!(rec.assignment.len(), 12);
/// ```
/// Upper-triangle pairwise similarities in `(i, j)` row-major order,
/// computed over `threads` workers (`0` = all cores) stealing rows from
/// an atomic cursor. Row order is restored on merge, so the result is
/// deterministic and thread-count-invariant.
fn similarity_sweep(trees: &[BitTree], threads: usize) -> Vec<f64> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let n = trees.len();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    };
    // Small sweeps don't amortize thread spawns.
    if threads <= 1 || n < 32 {
        let mut sims = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in i + 1..n {
                sims.push(tree_similarity(&trees[i], &trees[j]));
            }
        }
        return sims;
    }
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(n);
    let rows = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|_| {
                    let mut done: Vec<(usize, Vec<f64>)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let mut row = Vec::with_capacity(n - i - 1);
                        for j in i + 1..n {
                            row.push(tree_similarity(&trees[i], &trees[j]));
                        }
                        done.push((i, row));
                    }
                    done
                })
            })
            .collect();
        let mut rows: Vec<Vec<f64>> = vec![Vec::new(); n];
        for h in handles {
            for (i, row) in h.join().expect("similarity worker panicked") {
                rows[i] = row;
            }
        }
        rows
    })
    .expect("crossbeam scope");
    rows.into_iter().flatten().collect()
}

/// Run the full structural baseline: binarize, extract per-bit trees,
/// sweep pairwise similarities, and union-find above-threshold edges
/// into word groups.
pub fn recover_words(nl: &Netlist, cfg: &StructuralConfig) -> StructuralRecovery {
    let start = Instant::now();
    let (bin, _) = binarize(nl);
    let trees: Vec<BitTree> = bin
        .bits()
        .iter()
        .map(|&b| BitTree::extract(&bin, b, cfg.k_levels))
        .collect();
    let n = trees.len();
    let sims = similarity_sweep(&trees, cfg.threads);
    let max_sim = sims.iter().copied().fold(0.0, f64::max);
    let threshold_used = match cfg.threshold {
        Threshold::Adaptive => max_sim / 3.0,
        Threshold::Fixed(t) => t,
    };
    // Union-find over above-threshold edges.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut idx = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            if sims[idx] > threshold_used {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
            idx += 1;
        }
    }
    let mut map = std::collections::HashMap::new();
    let mut assignment = Vec::with_capacity(n);
    for i in 0..n {
        let root = find(&mut parent, i);
        let next = map.len();
        let id = *map.entry(root).or_insert(next);
        assignment.push(id);
    }
    StructuralRecovery {
        assignment,
        similarities: sims,
        stats: StructuralStats {
            pairs: n * n.saturating_sub(1) / 2,
            threshold_used,
            elapsed: start.elapsed(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert_circuits::{corrupt, generate, Profile};

    #[test]
    fn recovers_clean_counter_words_well() {
        // A clean generated circuit: sibling bits share block structure, so
        // structural matching should beat random grouping comfortably.
        let c = generate(&Profile::new("demo", 150, 20, 4), 21);
        let rec = recover_words(&c.netlist, &StructuralConfig::default());
        let truth = c.labels.assignment();
        let score = rebert_ari(&truth, &rec.assignment);
        assert!(score > 0.15, "clean ARI {score} too low");
    }

    #[test]
    fn corruption_degrades_structural_recovery() {
        let c = generate(&Profile::new("demo", 150, 20, 4), 22);
        let cfg = StructuralConfig::default();
        let truth = c.labels.assignment();
        let clean = rebert_ari(&truth, &recover_words(&c.netlist, &cfg).assignment);
        // Average over a few corruption seeds at R = 0.5.
        let mut corrupted_total = 0.0;
        for seed in 0..3 {
            let (bad, _) = corrupt(&c.netlist, 0.5, seed);
            corrupted_total += rebert_ari(&truth, &recover_words(&bad, &cfg).assignment);
        }
        let corrupted = corrupted_total / 3.0;
        assert!(
            corrupted < clean + 1e-9,
            "corruption should not help: clean {clean}, corrupted {corrupted}"
        );
    }

    #[test]
    fn fixed_threshold_respected() {
        let c = generate(&Profile::new("demo", 100, 10, 3), 23);
        let rec = recover_words(
            &c.netlist,
            &StructuralConfig {
                k_levels: 4,
                threshold: Threshold::Fixed(2.0), // impossible: all singletons
                ..StructuralConfig::default()
            },
        );
        let distinct: std::collections::HashSet<_> = rec.assignment.iter().collect();
        assert_eq!(distinct.len(), 10);
        assert_eq!(rec.stats.threshold_used, 2.0);
    }

    #[test]
    fn similarity_sweep_is_thread_count_invariant() {
        let c = generate(&Profile::new("demo", 200, 40, 5), 25);
        let base = recover_words(
            &c.netlist,
            &StructuralConfig {
                threads: 1,
                ..StructuralConfig::default()
            },
        );
        for threads in [2usize, 4] {
            let rec = recover_words(
                &c.netlist,
                &StructuralConfig {
                    threads,
                    ..StructuralConfig::default()
                },
            );
            assert_eq!(rec.similarities, base.similarities, "{threads} threads");
            assert_eq!(rec.assignment, base.assignment, "{threads} threads");
        }
    }

    #[test]
    fn stats_count_pairs() {
        let c = generate(&Profile::new("demo", 100, 8, 2), 24);
        let rec = recover_words(&c.netlist, &StructuralConfig::default());
        assert_eq!(rec.stats.pairs, 28);
        assert_eq!(rec.similarities.len(), 28);
    }

    // Local ARI to avoid a dev-dependency cycle with the rebert crate.
    fn rebert_ari(truth: &[usize], pred: &[usize]) -> f64 {
        use std::collections::HashMap;
        let n = truth.len();
        let mut cont: HashMap<(usize, usize), u64> = HashMap::new();
        let mut rows: HashMap<usize, u64> = HashMap::new();
        let mut cols: HashMap<usize, u64> = HashMap::new();
        for (&t, &p) in truth.iter().zip(pred) {
            *cont.entry((t, p)).or_insert(0) += 1;
            *rows.entry(t).or_insert(0) += 1;
            *cols.entry(p).or_insert(0) += 1;
        }
        let c2 = |x: u64| (x * x.saturating_sub(1) / 2) as f64;
        let index: f64 = cont.values().map(|&v| c2(v)).sum();
        let sr: f64 = rows.values().map(|&v| c2(v)).sum();
        let sc: f64 = cols.values().map(|&v| c2(v)).sum();
        let total = c2(n as u64);
        let expected = sr * sc / total;
        let max_index = 0.5 * (sr + sc);
        if (max_index - expected).abs() < 1e-12 {
            return if index == max_index { 1.0 } else { 0.0 };
        }
        (index - expected) / (max_index - expected)
    }
}
