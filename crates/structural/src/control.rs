//! Control-signal word identification — the paper's secondary comparator
//! (Tashjian & Davoodi, DAC'15; reference \[13\]).
//!
//! The idea: bits of the same word are typically gated by the **same
//! control signals** (load enables, mux selects), so grouping flip-flops
//! by the set of high-fanout control nets in their fan-in cones recovers
//! words. The paper notes this family "faces challenges due to the vast
//! number of control signals automatically inserted by the CAD tools" —
//! which is exactly how it behaves here: glue logic and corruption dilute
//! the control-set signature.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use rebert_netlist::{Cone, NetId, Netlist};
use serde::{Deserialize, Serialize};

/// Configuration of the control-signal baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlConfig {
    /// Nets driving at least this many gate inputs count as control
    /// signals.
    pub min_fanout: usize,
    /// Fan-in back-trace depth when collecting each bit's control set.
    pub k_levels: usize,
    /// Two bits group together when the Jaccard similarity of their
    /// control sets reaches this threshold.
    pub set_similarity: f64,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            min_fanout: 3,
            k_levels: 6,
            set_similarity: 0.99,
        }
    }
}

/// Telemetry from a control-signal recovery run.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlStats {
    /// Number of nets classified as control signals.
    pub control_signals: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Result of control-signal word recovery.
#[derive(Debug, Clone)]
pub struct ControlRecovery {
    /// `assignment[i]` = word id of bit `i` (dense ids).
    pub assignment: Vec<usize>,
    /// Run telemetry.
    pub stats: ControlStats,
}

/// Computes the fanout (number of gate-input loads) of every net.
pub fn net_fanouts(nl: &Netlist) -> Vec<usize> {
    let mut fanout = vec![0usize; nl.net_count()];
    for g in nl.gates() {
        for &inp in &g.inputs {
            fanout[inp.index()] += 1;
        }
    }
    fanout
}

/// Recovers words by shared-control-set matching.
///
/// # Examples
///
/// ```
/// use rebert_circuits::{generate, Profile};
/// use rebert_structural::{recover_words_by_control, ControlConfig};
///
/// let c = generate(&Profile::new("demo", 120, 16, 4), 3);
/// let rec = recover_words_by_control(&c.netlist, &ControlConfig::default());
/// assert_eq!(rec.assignment.len(), 16);
/// ```
pub fn recover_words_by_control(nl: &Netlist, cfg: &ControlConfig) -> ControlRecovery {
    let start = Instant::now();
    let fanout = net_fanouts(nl);
    let is_control: HashSet<NetId> = nl
        .iter_nets()
        .filter(|(id, _)| fanout[id.index()] >= cfg.min_fanout)
        .map(|(id, _)| id)
        .collect();

    // Each bit's control signature: control nets inside its cone.
    let bits = nl.bits();
    let signatures: Vec<HashSet<NetId>> = bits
        .iter()
        .map(|&bit| {
            let cone = Cone::trace(nl, bit, cfg.k_levels);
            let mut set = HashSet::new();
            for gid in &cone.gates {
                for &inp in &nl.gate(*gid).inputs {
                    if is_control.contains(&inp) {
                        set.insert(inp);
                    }
                }
            }
            set
        })
        .collect();

    let jaccard = |a: &HashSet<NetId>, b: &HashSet<NetId>| -> f64 {
        if a.is_empty() && b.is_empty() {
            return 0.0; // no control evidence: do not group
        }
        let inter = a.intersection(b).count();
        let union = a.union(b).count();
        inter as f64 / union as f64
    };

    let n = bits.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for i in 0..n {
        for j in i + 1..n {
            if jaccard(&signatures[i], &signatures[j]) >= cfg.set_similarity {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut map = HashMap::new();
    let mut assignment = Vec::with_capacity(n);
    for i in 0..n {
        let root = find(&mut parent, i);
        let next = map.len();
        assignment.push(*map.entry(root).or_insert(next));
    }
    ControlRecovery {
        assignment,
        stats: ControlStats {
            control_signals: is_control.len(),
            elapsed: start.elapsed(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert_netlist::parse_bench;

    /// Two 2-bit registers with distinct load enables.
    const TWO_REGS: &str = "\
INPUT(lda)
INPUT(ldb)
INPUT(d0)
INPUT(d1)
INPUT(d2)
INPUT(d3)
a0 = MUX(lda, qa0, d0)
a1 = MUX(lda, qa1, d1)
b0 = MUX(ldb, qb0, d2)
b1 = MUX(ldb, qb1, d3)
qa0 = DFF(a0)
qa1 = DFF(a1)
qb0 = DFF(b0)
qb1 = DFF(b1)
OUTPUT(qa1)
OUTPUT(qb1)
";

    #[test]
    fn fanout_counts() {
        let nl = parse_bench("t", TWO_REGS).unwrap();
        let fanout = net_fanouts(&nl);
        let lda = nl.find_net("lda").unwrap();
        assert_eq!(fanout[lda.index()], 2);
        let d0 = nl.find_net("d0").unwrap();
        assert_eq!(fanout[d0.index()], 1);
    }

    #[test]
    fn groups_by_shared_enable() {
        let nl = parse_bench("t", TWO_REGS).unwrap();
        let cfg = ControlConfig {
            min_fanout: 2,
            k_levels: 4,
            set_similarity: 0.99,
        };
        let rec = recover_words_by_control(&nl, &cfg);
        assert_eq!(rec.assignment.len(), 4);
        assert_eq!(rec.assignment[0], rec.assignment[1], "register A grouped");
        assert_eq!(rec.assignment[2], rec.assignment[3], "register B grouped");
        assert_ne!(rec.assignment[0], rec.assignment[2], "registers separate");
        assert_eq!(rec.stats.control_signals, 2);
    }

    #[test]
    fn no_control_evidence_means_singletons() {
        // Pure combinational feeds with no shared high-fanout nets.
        let src = "\
INPUT(a)
INPUT(b)
d0 = NOT(a)
d1 = NOT(b)
q0 = DFF(d0)
q1 = DFF(d1)
OUTPUT(q0)
";
        let nl = parse_bench("t", src).unwrap();
        let rec = recover_words_by_control(&nl, &ControlConfig::default());
        assert_ne!(rec.assignment[0], rec.assignment[1]);
    }

    #[test]
    fn dilution_by_spurious_controls_degrades_grouping() {
        // The paper's critique: extra CAD-inserted control-like signals
        // blur the signature. Adding a shared high-fanout net to every
        // cone makes the two registers' signatures more alike.
        let src = "\
INPUT(lda)
INPUT(ldb)
INPUT(glob)
INPUT(d0)
INPUT(d1)
INPUT(d2)
INPUT(d3)
x0 = AND(d0, glob)
x1 = AND(d1, glob)
x2 = AND(d2, glob)
x3 = AND(d3, glob)
a0 = MUX(lda, qa0, x0)
a1 = MUX(lda, qa1, x1)
b0 = MUX(ldb, qb0, x2)
b1 = MUX(ldb, qb1, x3)
qa0 = DFF(a0)
qa1 = DFF(a1)
qb0 = DFF(b0)
qb1 = DFF(b1)
OUTPUT(qa1)
";
        let nl = parse_bench("t", src).unwrap();
        let cfg = ControlConfig {
            min_fanout: 2,
            k_levels: 4,
            set_similarity: 0.3, // looser threshold + diluted sets...
        };
        let rec = recover_words_by_control(&nl, &cfg);
        // ...over-merges: registers A and B collapse into one word.
        assert_eq!(rec.assignment[0], rec.assignment[2]);
    }
}
