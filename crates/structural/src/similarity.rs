//! Recursive fan-in-tree similarity — the structural-matching baseline
//! (Meade et al., ISCAS'16; the paper's comparator \[12\]).
//!
//! Two bits are similar when their fan-in trees match structurally: equal
//! gate types at corresponding nodes, with children aligned by the best
//! pairing. Type mismatches score zero — the rigidity that makes the
//! method fast on clean netlists and brittle under gate-replacement
//! corruption, which is precisely the phenomenon the ReBERT paper
//! exploits.

use std::collections::HashMap;

use rebert_netlist::{BitTree, TreeNode};

/// Computes the structural similarity of two bit fan-in trees in
/// `[0, 1]`: 1 for structurally identical trees, 0 for a root gate-type
/// mismatch.
///
/// The recursion follows the classic register-matching formulation:
///
/// * leaf vs leaf → 1;
/// * leaf vs gate → 0;
/// * gates of different types → 0;
/// * gates of the same type → `(1 + best child pairing) / (1 + #children)`,
///   where for binary nodes the pairing is the better of the straight and
///   crossed child alignments.
///
/// Memoized over node pairs, so reconvergent trees stay polynomial.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use rebert_netlist::{binarize, parse_bench, BitTree};
/// use rebert_structural::tree_similarity;
///
/// let src = "\
/// INPUT(a)
/// INPUT(b)
/// d0 = AND(a, b)
/// d1 = AND(b, a)
/// q0 = DFF(d0)
/// q1 = DFF(d1)
/// OUTPUT(d0)
/// ";
/// let (bin, _) = binarize(&parse_bench("t", src)?);
/// let t0 = BitTree::extract(&bin, bin.bits()[0], 6);
/// let t1 = BitTree::extract(&bin, bin.bits()[1], 6);
/// assert_eq!(tree_similarity(&t0, &t1), 1.0);
/// # Ok(())
/// # }
/// ```
pub fn tree_similarity(a: &BitTree, b: &BitTree) -> f64 {
    let mut memo: HashMap<(u32, u32), f64> = HashMap::new();
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    node_sim(a, b, 0, 0, &mut memo)
}

fn node_sim(
    a: &BitTree,
    b: &BitTree,
    ai: u32,
    bi: u32,
    memo: &mut HashMap<(u32, u32), f64>,
) -> f64 {
    if let Some(&s) = memo.get(&(ai, bi)) {
        return s;
    }
    let s = match (&a.nodes()[ai as usize], &b.nodes()[bi as usize]) {
        (TreeNode::Leaf { .. }, TreeNode::Leaf { .. }) => 1.0,
        (TreeNode::Leaf { .. }, _) | (_, TreeNode::Leaf { .. }) => 0.0,
        (
            TreeNode::Gate {
                gtype: ga,
                left: la,
                right: ra,
            },
            TreeNode::Gate {
                gtype: gb,
                left: lb,
                right: rb,
            },
        ) => {
            if ga != gb {
                0.0
            } else {
                match (ra, rb) {
                    (None, None) => {
                        let c = node_sim(a, b, *la, *lb, memo);
                        (1.0 + c) / 2.0
                    }
                    (Some(ra), Some(rb)) => {
                        let straight =
                            node_sim(a, b, *la, *lb, memo) + node_sim(a, b, *ra, *rb, memo);
                        let crossed =
                            node_sim(a, b, *la, *rb, memo) + node_sim(a, b, *ra, *lb, memo);
                        (1.0 + straight.max(crossed)) / 3.0
                    }
                    // Same type but different arity (unary vs binary):
                    // align the single child with the better of the two.
                    (None, Some(rb)) => {
                        let best =
                            node_sim(a, b, *la, *lb, memo).max(node_sim(a, b, *la, *rb, memo));
                        (1.0 + best) / 3.0
                    }
                    (Some(ra), None) => {
                        let best =
                            node_sim(a, b, *la, *lb, memo).max(node_sim(a, b, *ra, *lb, memo));
                        (1.0 + best) / 3.0
                    }
                }
            }
        }
    };
    memo.insert((ai, bi), s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebert_netlist::{binarize, parse_bench, Netlist};

    fn trees(src: &str) -> Vec<BitTree> {
        let (bin, _): (Netlist, _) = binarize(&parse_bench("t", src).unwrap());
        bin.bits()
            .iter()
            .map(|&b| BitTree::extract(&bin, b, 6))
            .collect()
    }

    #[test]
    fn identical_structures_score_one() {
        let ts = trees(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\n\
             d0 = AND(a, b)\nd1 = AND(c, d)\nq0 = DFF(d0)\nq1 = DFF(d1)\nOUTPUT(d0)\n",
        );
        assert_eq!(tree_similarity(&ts[0], &ts[1]), 1.0);
    }

    #[test]
    fn root_type_mismatch_scores_zero() {
        let ts = trees(
            "INPUT(a)\nINPUT(b)\n\
             d0 = AND(a, b)\nd1 = OR(a, b)\nq0 = DFF(d0)\nq1 = DFF(d1)\nOUTPUT(d0)\n",
        );
        assert_eq!(tree_similarity(&ts[0], &ts[1]), 0.0);
    }

    #[test]
    fn crossed_children_still_match() {
        // d0 = AND(NOT(a), b), d1 = AND(b, NOT(a)): children swapped.
        let ts = trees(
            "INPUT(a)\nINPUT(b)\nna = NOT(a)\n\
             d0 = AND(na, b)\nd1 = AND(b, na)\nq0 = DFF(d0)\nq1 = DFF(d1)\nOUTPUT(d0)\n",
        );
        assert_eq!(tree_similarity(&ts[0], &ts[1]), 1.0);
    }

    #[test]
    fn partial_match_is_between_zero_and_one() {
        // Same root AND, one subtree differs in type.
        let ts = trees(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\n\
             w0 = NOT(a)\nw1 = XOR(c, d)\n\
             d0 = AND(w0, b)\nd1 = AND(w1, b)\n\
             q0 = DFF(d0)\nq1 = DFF(d1)\nOUTPUT(d0)\n",
        );
        let s = tree_similarity(&ts[0], &ts[1]);
        assert!(s > 0.0 && s < 1.0, "s = {s}");
    }

    #[test]
    fn symmetric() {
        let ts = trees(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nw = OR(a, b)\n\
             d0 = AND(w, c)\nd1 = AND(a, c)\nq0 = DFF(d0)\nq1 = DFF(d1)\nOUTPUT(d0)\n",
        );
        assert_eq!(
            tree_similarity(&ts[0], &ts[1]),
            tree_similarity(&ts[1], &ts[0])
        );
    }

    #[test]
    fn corruption_collapses_similarity() {
        // The ReBERT premise: equivalent-gate replacement destroys
        // structural similarity. NAND vs OR(NOT, NOT) are equivalent but
        // structurally disjoint.
        let ts = trees(
            "INPUT(a)\nINPUT(b)\n\
             d0 = NAND(a, b)\n\
             na = NOT(a)\nnb = NOT(b)\nd1 = OR(na, nb)\n\
             q0 = DFF(d0)\nq1 = DFF(d1)\nOUTPUT(d0)\n",
        );
        assert_eq!(tree_similarity(&ts[0], &ts[1]), 0.0);
    }

    #[test]
    fn deeper_match_scores_higher_than_shallow() {
        let ts = trees(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\n\
             w0 = OR(a, b)\nw1 = OR(c, d)\nw2 = XOR(c, d)\n\
             d0 = AND(w0, c)\nd1 = AND(w1, c)\nd2 = AND(w2, c)\n\
             q0 = DFF(d0)\nq1 = DFF(d1)\nq2 = DFF(d2)\nOUTPUT(d0)\n",
        );
        let deep = tree_similarity(&ts[0], &ts[1]); // OR subtree matches
        let shallow = tree_similarity(&ts[0], &ts[2]); // XOR subtree mismatches
        assert!(deep > shallow, "{deep} <= {shallow}");
    }
}
