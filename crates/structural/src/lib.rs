//! # rebert-structural
//!
//! The structural-matching baseline for word-level netlist reverse
//! engineering — a reimplementation, from the published description, of
//! the register-identification approach the ReBERT paper compares against
//! (Meade et al., ISCAS 2016, reference \[12\]).
//!
//! Bits are grouped by recursive fan-in-tree similarity: exact gate-type
//! matching at corresponding nodes with best-pairing child alignment.
//! This is strong on clean netlists and collapses under the paper's
//! equivalence-preserving gate replacement — the behaviour Table II
//! quantifies.
//!
//! ## Example
//!
//! ```
//! use rebert_circuits::{generate, Profile};
//! use rebert_structural::{recover_words, StructuralConfig};
//!
//! let c = generate(&Profile::new("demo", 120, 16, 4), 3);
//! let recovered = recover_words(&c.netlist, &StructuralConfig::default());
//! assert_eq!(recovered.assignment.len(), 16);
//! ```

#![warn(missing_docs)]

mod control;
mod pipeline;
mod similarity;

pub use control::{
    net_fanouts, recover_words_by_control, ControlConfig, ControlRecovery, ControlStats,
};
pub use pipeline::{
    recover_words, StructuralConfig, StructuralRecovery, StructuralStats, Threshold,
};
pub use similarity::tree_similarity;
