//! Tiny dependency-free argument parsing for the `rebert` CLI.

use std::collections::HashMap;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` options and bare
/// flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Error produced while interpreting the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand given.
    MissingCommand,
    /// A required option was not provided.
    MissingOption(&'static str),
    /// An option value failed to parse.
    BadValue {
        /// The option name.
        option: &'static str,
        /// The raw value.
        value: String,
    },
    /// A `--key value` option the subcommand does not define.
    UnknownOption {
        /// The option name as given (without `--`).
        given: String,
        /// The closest accepted option name, if one is plausibly meant.
        suggestion: Option<&'static str>,
    },
    /// A bare flag the subcommand does not define.
    UnknownFlag {
        /// The flag as given.
        given: String,
        /// The closest accepted flag or option name, if any.
        suggestion: Option<&'static str>,
    },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingCommand => write!(f, "no subcommand given (try `rebert help`)"),
            ArgsError::MissingOption(o) => write!(f, "missing required option --{o}"),
            ArgsError::BadValue { option, value } => {
                write!(f, "option --{option} has invalid value `{value}`")
            }
            ArgsError::UnknownOption { given, suggestion } => {
                write!(f, "unknown option --{given}")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean --{s}?)")?;
                }
                Ok(())
            }
            ArgsError::UnknownFlag { given, suggestion } => {
                write!(f, "unknown flag `{given}`")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean --{s}?)")?;
                }
                Ok(())
            }
        }
    }
}

/// Edit distance (insert/delete/substitute, each cost 1) used for
/// "did you mean" hints.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The accepted name closest to `given`, if it is close enough to be a
/// plausible typo (distance ≤ 2, or ≤ 1 for very short names).
fn closest(given: &str, accepted: &[&'static str]) -> Option<&'static str> {
    accepted
        .iter()
        .map(|&name| (levenshtein(given, name), name))
        .min()
        .filter(|&(d, name)| d <= if name.len() <= 4 { 1 } else { 2 })
        .map(|(_, name)| name)
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses an iterator of raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgsError> {
        let mut iter = raw.into_iter().peekable();
        let command = iter.next().ok_or(ArgsError::MissingCommand)?;
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        options.insert(key.to_owned(), iter.next().expect("peeked"));
                    }
                    _ => flags.push(key.to_owned()),
                }
            } else {
                flags.push(tok);
            }
        }
        Ok(Args {
            command,
            options,
            flags,
        })
    }

    /// A required string option.
    pub fn require(&self, key: &'static str) -> Result<&str, ArgsError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or(ArgsError::MissingOption(key))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// An optional parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        key: &'static str,
        default: T,
    ) -> Result<T, ArgsError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                option: key,
                value: v.clone(),
            }),
        }
    }

    /// Whether a bare flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Strict validation: every parsed `--key value` option must be in
    /// `options` and every flag in `flags`, otherwise the nearest
    /// accepted spelling is suggested. Subcommands call this before
    /// touching any value, so a typo like `--modle` fails loudly instead
    /// of silently falling back to a default.
    pub fn expect_only(
        &self,
        options: &[&'static str],
        flags: &[&'static str],
    ) -> Result<(), ArgsError> {
        // Deterministic order for error reporting (HashMap iteration is
        // not) — report the lexicographically first offender.
        let mut unknown: Vec<&String> = self
            .options
            .keys()
            .filter(|k| !options.contains(&k.as_str()))
            .collect();
        unknown.sort();
        if let Some(given) = unknown.first() {
            // A misspelled *flag* can land in the option map when it
            // happens to be followed by a value-looking token; search
            // both tables for the hint.
            let mut accepted: Vec<&'static str> = options.to_vec();
            accepted.extend_from_slice(flags);
            return Err(ArgsError::UnknownOption {
                given: (*given).clone(),
                suggestion: closest(given, &accepted),
            });
        }
        if let Some(given) = self.flags.iter().find(|f| !flags.contains(&f.as_str())) {
            let mut accepted: Vec<&'static str> = flags.to_vec();
            accepted.extend_from_slice(options);
            return Err(ArgsError::UnknownFlag {
                given: given.clone(),
                suggestion: closest(given, &accepted),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string())).expect("parses")
    }

    #[test]
    fn parses_command_options_flags() {
        let a = parse(&["recover", "--model", "m.json", "--in", "x.bench", "verbose"]);
        assert_eq!(a.command, "recover");
        assert_eq!(a.require("model").unwrap(), "m.json");
        assert_eq!(a.get("in"), Some("x.bench"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn numeric_defaults() {
        let a = parse(&["train", "--epochs", "4"]);
        assert_eq!(a.get_or("epochs", 8usize).unwrap(), 4);
        assert_eq!(a.get_or("seed", 7u64).unwrap(), 7);
        assert!(matches!(a.get_or::<usize>("epochs", 0).map(|_| ()), Ok(())));
    }

    #[test]
    fn bad_value_reported() {
        let a = parse(&["train", "--epochs", "soon"]);
        assert!(matches!(
            a.get_or::<usize>("epochs", 1),
            Err(ArgsError::BadValue { .. })
        ));
    }

    #[test]
    fn missing_command_reported() {
        assert!(matches!(
            Args::parse(Vec::<String>::new()),
            Err(ArgsError::MissingCommand)
        ));
    }

    #[test]
    fn missing_option_reported() {
        let a = parse(&["recover"]);
        assert!(matches!(
            a.require("model"),
            Err(ArgsError::MissingOption("model"))
        ));
    }

    #[test]
    fn trailing_flag_style_option() {
        // `--fast` at the end (no value following) is a flag.
        let a = parse(&["table", "--fast"]);
        assert!(a.flag("fast"));
    }

    #[test]
    fn expect_only_accepts_known_names() {
        let a = parse(&[
            "recover",
            "--model",
            "m.json",
            "--in",
            "x.bench",
            "--baseline",
        ]);
        a.expect_only(&["model", "in", "labels", "threads"], &["baseline"])
            .expect("all names known");
    }

    #[test]
    fn unknown_option_rejected_with_suggestion() {
        let a = parse(&["recover", "--modle", "m.json"]);
        let err = a
            .expect_only(&["model", "in", "labels", "threads"], &["baseline"])
            .unwrap_err();
        assert_eq!(
            err,
            ArgsError::UnknownOption {
                given: "modle".into(),
                suggestion: Some("model"),
            }
        );
        assert!(err.to_string().contains("did you mean --model?"));
    }

    #[test]
    fn unknown_option_without_a_close_match_has_no_suggestion() {
        let a = parse(&["recover", "--frobnicate", "yes"]);
        let err = a.expect_only(&["model", "in"], &[]).unwrap_err();
        assert_eq!(
            err,
            ArgsError::UnknownOption {
                given: "frobnicate".into(),
                suggestion: None,
            }
        );
        assert!(!err.to_string().contains("did you mean"));
    }

    #[test]
    fn unknown_flag_rejected_with_suggestion() {
        let a = parse(&["recover", "--model", "m.json", "--baselin"]);
        let err = a.expect_only(&["model", "in"], &["baseline"]).unwrap_err();
        assert_eq!(
            err,
            ArgsError::UnknownFlag {
                given: "baselin".into(),
                suggestion: Some("baseline"),
            }
        );
    }

    #[test]
    fn stray_positional_is_an_unknown_flag() {
        let a = parse(&["stats", "extra.bench"]);
        let err = a.expect_only(&["in"], &[]).unwrap_err();
        assert!(matches!(err, ArgsError::UnknownFlag { .. }));
    }

    #[test]
    fn misspelled_flag_consuming_a_value_still_suggests_the_flag() {
        // `--baselne x.bench` parses as an option; the hint must still
        // find the intended flag across tables.
        let a = parse(&["recover", "--baselne", "x.bench"]);
        let err = a.expect_only(&["model", "in"], &["baseline"]).unwrap_err();
        assert_eq!(
            err,
            ArgsError::UnknownOption {
                given: "baselne".into(),
                suggestion: Some("baseline"),
            }
        );
    }

    #[test]
    fn short_names_use_a_tighter_typo_budget() {
        // Distance 2 from a 2-char name is not a plausible typo.
        assert_eq!(closest("xy", &["in"]), None);
        assert_eq!(closest("ni", &["in"]), None);
        assert_eq!(closest("i", &["in"]), Some("in"));
        assert_eq!(closest("queue", &["queue"]), Some("queue"));
        assert_eq!(closest("deadline-m", &["deadline-ms"]), Some("deadline-ms"));
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("model", "modle"), 2);
    }
}
