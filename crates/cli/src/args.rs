//! Tiny dependency-free argument parsing for the `rebert` CLI.

use std::collections::HashMap;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` options and bare
/// flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Error produced while interpreting the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand given.
    MissingCommand,
    /// A required option was not provided.
    MissingOption(&'static str),
    /// An option value failed to parse.
    BadValue {
        /// The option name.
        option: &'static str,
        /// The raw value.
        value: String,
    },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingCommand => write!(f, "no subcommand given (try `rebert help`)"),
            ArgsError::MissingOption(o) => write!(f, "missing required option --{o}"),
            ArgsError::BadValue { option, value } => {
                write!(f, "option --{option} has invalid value `{value}`")
            }
        }
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses an iterator of raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgsError> {
        let mut iter = raw.into_iter().peekable();
        let command = iter.next().ok_or(ArgsError::MissingCommand)?;
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        options.insert(key.to_owned(), iter.next().expect("peeked"));
                    }
                    _ => flags.push(key.to_owned()),
                }
            } else {
                flags.push(tok);
            }
        }
        Ok(Args {
            command,
            options,
            flags,
        })
    }

    /// A required string option.
    pub fn require(&self, key: &'static str) -> Result<&str, ArgsError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or(ArgsError::MissingOption(key))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// An optional parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        key: &'static str,
        default: T,
    ) -> Result<T, ArgsError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                option: key,
                value: v.clone(),
            }),
        }
    }

    /// Whether a bare flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string())).expect("parses")
    }

    #[test]
    fn parses_command_options_flags() {
        let a = parse(&["recover", "--model", "m.json", "--in", "x.bench", "verbose"]);
        assert_eq!(a.command, "recover");
        assert_eq!(a.require("model").unwrap(), "m.json");
        assert_eq!(a.get("in"), Some("x.bench"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn numeric_defaults() {
        let a = parse(&["train", "--epochs", "4"]);
        assert_eq!(a.get_or("epochs", 8usize).unwrap(), 4);
        assert_eq!(a.get_or("seed", 7u64).unwrap(), 7);
        assert!(matches!(a.get_or::<usize>("epochs", 0).map(|_| ()), Ok(())));
    }

    #[test]
    fn bad_value_reported() {
        let a = parse(&["train", "--epochs", "soon"]);
        assert!(matches!(
            a.get_or::<usize>("epochs", 1),
            Err(ArgsError::BadValue { .. })
        ));
    }

    #[test]
    fn missing_command_reported() {
        assert!(matches!(
            Args::parse(Vec::<String>::new()),
            Err(ArgsError::MissingCommand)
        ));
    }

    #[test]
    fn missing_option_reported() {
        let a = parse(&["recover"]);
        assert!(matches!(
            a.require("model"),
            Err(ArgsError::MissingOption("model"))
        ));
    }

    #[test]
    fn trailing_flag_style_option() {
        // `--fast` at the end (no value following) is a flag.
        let a = parse(&["table", "--fast"]);
        assert!(a.flag("fast"));
    }
}
