//! Netlist and label file I/O for the CLI: format detection by
//! extension, label JSON round-trips.

use std::fmt;
use std::path::Path;

use rebert::json::Json;
use rebert_circuits::WordLabels;
use rebert_netlist::{parse_bench, parse_verilog, write_bench, write_verilog, Netlist};

/// Errors surfaced by CLI file handling.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Fs(std::io::Error),
    /// `.bench` parse failure.
    Bench(rebert_netlist::ParseError),
    /// Verilog parse failure.
    Verilog(rebert_netlist::VerilogError),
    /// Label JSON failure.
    Labels(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Fs(e) => write!(f, "file error: {e}"),
            IoError::Bench(e) => write!(f, "bench parse error: {e}"),
            IoError::Verilog(e) => write!(f, "verilog parse error: {e}"),
            IoError::Labels(e) => write!(f, "labels error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Fs(e)
    }
}

/// Whether a path names a Verilog file (`.v` / `.sv`), as opposed to the
/// default `.bench` dialect.
pub fn is_verilog(path: &Path) -> bool {
    matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("v") | Some("sv")
    )
}

/// Reads a netlist, choosing the parser from the file extension.
///
/// # Errors
///
/// Returns an [`IoError`] on filesystem or parse failure.
pub fn read_netlist(path: &Path) -> Result<Netlist, IoError> {
    let text = std::fs::read_to_string(path)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design");
    if is_verilog(path) {
        parse_verilog(name, &text).map_err(IoError::Verilog)
    } else {
        parse_bench(name, &text).map_err(IoError::Bench)
    }
}

/// Writes a netlist, choosing the serializer from the file extension.
///
/// # Errors
///
/// Returns an [`IoError`] on filesystem failure.
pub fn write_netlist(nl: &Netlist, path: &Path) -> Result<(), IoError> {
    let text = if is_verilog(path) {
        write_verilog(nl)
    } else {
        write_bench(nl)
    };
    std::fs::write(path, text)?;
    Ok(())
}

/// Reads ground-truth word labels from JSON (`{"words": [[0,1], …]}`,
/// the schema `rebert generate` writes).
///
/// # Errors
///
/// Returns an [`IoError`] on filesystem or deserialization failure.
pub fn read_labels(path: &Path) -> Result<WordLabels, IoError> {
    let text = std::fs::read_to_string(path)?;
    let json = Json::parse(&text).map_err(|e| IoError::Labels(e.to_string()))?;
    let words_json = json
        .get("words")
        .and_then(Json::as_array)
        .ok_or_else(|| IoError::Labels("labels file lacks a `words` array".to_owned()))?;
    let mut words: Vec<Vec<usize>> = Vec::with_capacity(words_json.len());
    let mut seen = std::collections::HashSet::new();
    for (wi, word) in words_json.iter().enumerate() {
        let bits = word
            .as_array()
            .ok_or_else(|| IoError::Labels(format!("word {wi} is not an array")))?;
        let mut out = Vec::with_capacity(bits.len());
        for bit in bits {
            let b = bit
                .as_usize()
                .ok_or_else(|| IoError::Labels(format!("word {wi} holds a non-integer bit")))?;
            if !seen.insert(b) {
                return Err(IoError::Labels(format!("bit {b} appears in two words")));
            }
            out.push(b);
        }
        words.push(out);
    }
    Ok(WordLabels::new(words))
}

/// Writes word labels as JSON in the schema [`read_labels`] accepts.
///
/// # Errors
///
/// Returns an [`IoError`] on filesystem failure.
pub fn write_labels(labels: &WordLabels, path: &Path) -> Result<(), IoError> {
    let words = Json::Arr(
        labels
            .words()
            .iter()
            .map(|w| Json::Arr(w.iter().map(|&b| Json::uint(b as u64)).collect()))
            .collect(),
    );
    let json = Json::Obj(vec![("words".to_owned(), words)]);
    std::fs::write(path, format!("{json}\n"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rebert_cli_io_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn bench_round_trip_via_files() {
        let nl = parse_bench("t", "INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n").unwrap();
        let path = tmp("x.bench");
        write_netlist(&nl, &path).unwrap();
        let back = read_netlist(&path).unwrap();
        assert_eq!(back.gate_count(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn verilog_round_trip_via_files() {
        let nl = parse_bench("t", "INPUT(a)\nINPUT(b)\ny = NAND(a, b)\nOUTPUT(y)\n").unwrap();
        let path = tmp("x.v");
        write_netlist(&nl, &path).unwrap();
        let back = read_netlist(&path).unwrap();
        assert_eq!(back.gate_count(), 1);
        assert_eq!(back.gates()[0].gtype, rebert_netlist::GateType::Nand);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn labels_round_trip() {
        let labels = WordLabels::new(vec![vec![0, 1], vec![2]]);
        let path = tmp("labels.json");
        write_labels(&labels, &path).unwrap();
        let back = read_labels(&path).unwrap();
        assert_eq!(back, labels);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_labels_rejected() {
        let path = tmp("bad_labels.json");
        for (text, what) in [
            ("{]", "unparseable JSON"),
            ("{\"bits\": []}", "missing words key"),
            ("{\"words\": 3}", "words not an array"),
            ("{\"words\": [3]}", "word not an array"),
            ("{\"words\": [[\"a\"]]}", "non-integer bit"),
            ("{\"words\": [[0, 1], [1]]}", "duplicate bit"),
        ] {
            std::fs::write(&path, text).unwrap();
            let err = read_labels(&path).unwrap_err();
            assert!(matches!(err, IoError::Labels(_)), "{what}: {err:?}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn extension_detection() {
        assert!(is_verilog(Path::new("a.v")));
        assert!(is_verilog(Path::new("a.sv")));
        assert!(!is_verilog(Path::new("a.bench")));
        assert!(!is_verilog(Path::new("a")));
    }

    #[test]
    fn missing_file_reports_fs_error() {
        let err = read_netlist(Path::new("/nonexistent/rebert.bench")).unwrap_err();
        assert!(matches!(err, IoError::Fs(_)));
    }
}
