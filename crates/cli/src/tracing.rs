//! Per-invocation tracing setup: the `--log-level` and `--trace-out`
//! options shared by the long-running subcommands.
//!
//! Nothing is installed when neither option (nor `REBERT_LOG`) is
//! given, so the default CLI run keeps tracing in its disabled,
//! one-atomic-load state. The returned [`TraceGuard`] uninstalls
//! whatever was installed when it drops — and writes the Chrome
//! trace-event file for `--trace-out`, ready to load in Perfetto or
//! `chrome://tracing`.

use std::path::PathBuf;
use std::sync::Arc;

use rebert_obs as obs;

use crate::args::Args;
use crate::commands::CliError;

/// Sinks installed for one CLI invocation; see the module docs.
pub struct TraceGuard {
    stderr: Option<obs::SinkId>,
    chrome: Option<(obs::SinkId, Arc<obs::ChromeTraceSink>, PathBuf)>,
}

impl TraceGuard {
    /// Whether this invocation installed any sink at all.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_active(&self) -> bool {
        self.stderr.is_some() || self.chrome.is_some()
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some(id) = self.stderr.take() {
            obs::uninstall(id);
        }
        if let Some((id, sink, path)) = self.chrome.take() {
            // Uninstall first so the file captures a quiesced trace
            // (open spans are synthetically closed by the exporter).
            obs::uninstall(id);
            match sink.write_to(&path) {
                Ok(()) => eprintln!("trace written to {}", path.display()),
                Err(e) => eprintln!("error: cannot write trace `{}`: {e}", path.display()),
            }
        }
    }
}

/// Installs sinks according to `--log-level` (or the `REBERT_LOG`
/// environment variable) and `--trace-out`.
///
/// # Errors
///
/// Fails on an unparseable `--log-level`; a bad `REBERT_LOG` value is
/// ignored (the environment must not break scripted runs).
pub fn init(args: &Args) -> Result<TraceGuard, CliError> {
    let mut guard = TraceGuard {
        stderr: None,
        chrome: None,
    };
    let stderr_level = match args.get("log-level") {
        Some(raw) => Some(
            obs::Level::parse(raw)
                .ok_or_else(|| format!("bad --log-level `{raw}` (error|warn|info|debug|trace)"))?,
        ),
        None => std::env::var("REBERT_LOG")
            .ok()
            .and_then(|v| obs::Level::parse(&v)),
    };
    if let Some(level) = stderr_level {
        guard.stderr = Some(obs::install(Arc::new(obs::StderrSink::new(level))));
    }
    if let Some(path) = args.get("trace-out") {
        let sink = Arc::new(obs::ChromeTraceSink::new(obs::Level::Debug));
        let id = obs::install(Arc::clone(&sink) as Arc<dyn obs::Sink>);
        guard.chrome = Some((id, sink, PathBuf::from(path)));
    }
    Ok(guard)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string())).expect("parse")
    }

    #[test]
    fn no_flags_installs_nothing() {
        let guard = init(&args(&["recover"])).unwrap();
        assert!(!guard.is_active());
    }

    #[test]
    fn bad_log_level_is_a_usage_error() {
        let err = match init(&args(&["recover", "--log-level", "loud"])) {
            Ok(_) => panic!("`loud` must not parse as a level"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("--log-level"), "{err}");
    }

    #[test]
    fn log_level_installs_and_uninstalls_a_stderr_sink() {
        let guard = init(&args(&["recover", "--log-level", "error"])).unwrap();
        assert!(guard.is_active());
        assert!(obs::enabled(obs::Level::Error));
        drop(guard);
    }

    #[test]
    fn trace_out_writes_a_parseable_chrome_trace_on_drop() {
        let path = std::env::temp_dir()
            .join("rebert_cli_tracing_tests")
            .join("unit.trace.json");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let guard = init(&args(&["recover", "--trace-out", path.to_str().unwrap()])).unwrap();
        {
            let sp = obs::span(obs::Level::Info, "cli-test", "unit-root");
            sp.end();
        }
        drop(guard);
        let text = std::fs::read_to_string(&path).unwrap();
        let json = rebert::json::Json::parse(&text).expect("trace file is valid JSON");
        let events = json
            .get("traceEvents")
            .and_then(rebert::json::Json::as_array)
            .expect("traceEvents array");
        assert!(
            events.iter().any(|e| {
                e.get("name").and_then(rebert::json::Json::as_str) == Some("unit-root")
            }),
            "the span recorded while the guard was live is exported"
        );
    }
}
