//! Implementation of the CLI subcommands.

use std::path::Path;

use rebert::{
    ari, load_model, save_model, train, training_samples, DatasetConfig, ReBertConfig, ReBertModel,
    TrainConfig,
};
use rebert_circuits::{corrupt, generate, profile, Profile};
use rebert_netlist::{optimize, NetlistStats};
use rebert_structural::{recover_words, StructuralConfig};

use crate::args::Args;
use crate::io::{read_labels, read_netlist, write_labels, write_netlist};

/// Top-level CLI error: any subcommand failure with a printable message.
pub type CliError = Box<dyn std::error::Error>;

/// Dispatches a parsed command line. Returns the text to print on
/// success (kept out of `main` so commands are unit-testable).
pub fn run(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "corrupt" => cmd_corrupt(args),
        "optimize" => cmd_optimize(args),
        "stats" => cmd_stats(args),
        "train" => cmd_train(args),
        "recover" => cmd_recover(args),
        "help" | "--help" | "-h" => Ok(HELP.to_owned()),
        other => Err(format!("unknown subcommand `{other}` (try `rebert help`)").into()),
    }
}

/// The CLI usage text.
pub const HELP: &str = "\
rebert — gate-level to word-level netlist reverse engineering

USAGE: rebert <command> [options]

COMMANDS
  generate  --profile <b03|...|custom> --out <file[.bench|.v]>
            [--seed N] [--gates N --ffs N --words N]
            Generate a benchmark circuit; writes ground-truth labels to
            <out>.labels.json.
  corrupt   --in <file> --out <file> --r <0..1> [--seed N]
            Apply R-Index equivalence-preserving gate replacement.
  optimize  --in <file> --out <file>
            Constant folding, buffer sweeping, dead-logic elimination.
  stats     --in <file>
            Print gate/FF/word-relevant statistics.
  train     --profiles <b03,b08,...> --model <out.json>
            [--seed N] [--epochs N] [--cap N]
            Generate training benchmarks and fit a ReBERT model.
  recover   --model <model.json> --in <file>
            [--labels <labels.json>] [--baseline] [--threads N]
            Recover words on the batched inference engine (--threads 0 =
            all cores, the default); the quadratic phase deduplicates
            structurally identical cones and scores each unique class
            pair once; prints per-phase timings, pair throughput, and
            cone-dedup counters; print ARI when labels are given;
            --baseline also runs structural matching.
  help      Show this text.
";

fn parse_profile(args: &Args) -> Result<Profile, CliError> {
    let name = args.require("profile")?;
    if let Some(p) = profile(name) {
        return Ok(p);
    }
    if name == "custom" {
        let gates = args.get_or("gates", 200usize)?;
        let ffs = args.get_or("ffs", 32usize)?;
        let words = args.get_or("words", 6usize)?;
        return Ok(Profile::new("custom", gates, ffs, words));
    }
    Err(format!("unknown profile `{name}` (b03..b18 or `custom`)").into())
}

fn cmd_generate(args: &Args) -> Result<String, CliError> {
    let p = parse_profile(args)?;
    let seed = args.get_or("seed", 42u64)?;
    let out = Path::new(args.require("out")?);
    let circuit = generate(&p, seed);
    write_netlist(&circuit.netlist, out)?;
    let labels_path = out.with_extension("labels.json");
    write_labels(&circuit.labels, &labels_path)?;
    Ok(format!(
        "generated `{}`: {} gates, {} FFs, {} words -> {} (+ {})",
        p.name,
        circuit.netlist.gate_count(),
        circuit.netlist.dff_count(),
        circuit.labels.word_count(),
        out.display(),
        labels_path.display()
    ))
}

fn cmd_corrupt(args: &Args) -> Result<String, CliError> {
    let input = read_netlist(Path::new(args.require("in")?))?;
    let r: f64 = args.get_or("r", 0.4)?;
    if !(0.0..=1.0).contains(&r) {
        return Err(format!("--r must be within [0, 1], got {r}").into());
    }
    let seed = args.get_or("seed", 1u64)?;
    let (bad, stats) = corrupt(&input, r, seed);
    let out = Path::new(args.require("out")?);
    write_netlist(&bad, out)?;
    Ok(format!(
        "corrupted {} / {} gates (R-Index {r}) -> {}",
        stats.replaced,
        stats.visited,
        out.display()
    ))
}

fn cmd_optimize(args: &Args) -> Result<String, CliError> {
    let input = read_netlist(Path::new(args.require("in")?))?;
    let (opt, stats) = optimize(&input);
    let out = Path::new(args.require("out")?);
    write_netlist(&opt, out)?;
    Ok(format!(
        "optimized: {} -> {} gates ({} folded, {} buffers swept, {} dead removed) -> {}",
        input.gate_count(),
        opt.gate_count(),
        stats.gates_folded,
        stats.buffers_swept,
        stats.dead_gates_removed,
        out.display()
    ))
}

fn cmd_stats(args: &Args) -> Result<String, CliError> {
    let input = read_netlist(Path::new(args.require("in")?))?;
    let st = NetlistStats::of(&input);
    let mut out = format!("{st}\n");
    for (g, n) in &st.by_type {
        out.push_str(&format!("  {g:<5} {n}\n"));
    }
    Ok(out)
}

fn cmd_train(args: &Args) -> Result<String, CliError> {
    let names = args.require("profiles")?;
    let seed = args.get_or("seed", 42u64)?;
    let circuits: Vec<_> = names
        .split(',')
        .map(|n| {
            profile(n.trim())
                .map(|p| generate(&p, seed ^ n.len() as u64))
                .ok_or_else(|| format!("unknown profile `{n}`"))
        })
        .collect::<Result<_, _>>()?;
    let refs: Vec<_> = circuits.iter().collect();

    let mut mcfg = ReBertConfig::small();
    mcfg.k_levels = args.get_or("k", 4usize)?;
    let mut dcfg = DatasetConfig::for_model(&mcfg);
    dcfg.max_per_circuit = args.get_or("cap", 700usize)?;
    dcfg.r_indexes = vec![0.0, 0.4, 0.8];
    let samples = training_samples(&refs, &dcfg, seed);

    let mut model = ReBertModel::new(mcfg, seed);
    let report = train(
        &mut model,
        &samples,
        &TrainConfig {
            epochs: args.get_or("epochs", 8usize)?,
            lr: 1e-3,
            batch_size: 16,
            seed,
            weight_decay: 0.01,
            warmup_frac: 0.1,
        },
    );
    let model_path = Path::new(args.require("model")?);
    save_model(&model, model_path)?;
    Ok(format!(
        "trained on {} samples (final loss {:.3}, accuracy {:.3}) -> {}",
        report.samples,
        report.epoch_losses.last().copied().unwrap_or(0.0),
        report.final_accuracy,
        model_path.display()
    ))
}

fn cmd_recover(args: &Args) -> Result<String, CliError> {
    let model = load_model(Path::new(args.require("model")?))?;
    let input = read_netlist(Path::new(args.require("in")?))?;
    let threads = args.get_or("threads", 0usize)?;
    let rec = model.recover_words_with(&input, threads);
    let s = &rec.stats;
    let mut out = format!(
        "{}: {} bits -> {} words ({} pairs scored, {} filtered, {:?})\n",
        input.name(),
        rec.assignment.len(),
        rec.words().len(),
        s.pairs_scored,
        s.pairs_filtered,
        s.elapsed
    );
    out.push_str(&format!(
        "  phases: tokenize {:?} | filter {:?} | score {:?} ({:.0} pairs/s, {} threads) | group {:?}\n",
        s.tokenize_time,
        s.filter_time,
        s.score_time,
        s.pairs_per_sec,
        rebert::resolve_threads(threads),
        s.group_time
    ));
    out.push_str(&format!(
        "  cone dedup: {} classes | {} class pairs scored | {} pairs memoized\n",
        s.classes, s.class_pairs_scored, s.pairs_memoized
    ));
    for (wi, word) in rec.words().iter().enumerate() {
        let names: Vec<&str> = word
            .iter()
            .map(|&b| input.net_name(input.bits()[b]))
            .collect();
        out.push_str(&format!("  word {wi}: {names:?}\n"));
    }
    if let Some(labels_path) = args.get("labels") {
        let labels = read_labels(Path::new(labels_path))?;
        let truth = labels.assignment();
        out.push_str(&format!(
            "ReBERT ARI: {:.3}\n",
            ari(&truth, &rec.assignment)
        ));
        if args.flag("baseline") {
            let scfg = StructuralConfig {
                k_levels: model.config().k_levels,
                threads,
                ..Default::default()
            };
            let srec = recover_words(&input, &scfg);
            out.push_str(&format!(
                "Structural ARI: {:.3}\n",
                ari(&truth, &srec.assignment)
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn args(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string())).expect("parse")
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rebert_cli_cmd_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&args(&["help"])).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("recover"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn generate_corrupt_optimize_stats_chain() {
        let bench = tmp("chain.bench");
        let out = run(&args(&[
            "generate",
            "--profile",
            "custom",
            "--gates",
            "120",
            "--ffs",
            "16",
            "--words",
            "4",
            "--seed",
            "5",
            "--out",
            bench.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("16 FFs"));
        assert!(bench.exists());
        assert!(tmp("chain.labels.json").exists());

        let bad = tmp("chain_bad.bench");
        let out = run(&args(&[
            "corrupt",
            "--in",
            bench.to_str().unwrap(),
            "--out",
            bad.to_str().unwrap(),
            "--r",
            "0.5",
        ]))
        .unwrap();
        assert!(out.contains("corrupted"));

        let opt = tmp("chain_opt.bench");
        let out = run(&args(&[
            "optimize",
            "--in",
            bad.to_str().unwrap(),
            "--out",
            opt.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("optimized"));

        let out = run(&args(&["stats", "--in", opt.to_str().unwrap()])).unwrap();
        assert!(out.contains("16 FFs"));
    }

    #[test]
    fn corrupt_rejects_bad_r() {
        let bench = tmp("badr.bench");
        run(&args(&[
            "generate",
            "--profile",
            "custom",
            "--ffs",
            "8",
            "--words",
            "2",
            "--gates",
            "50",
            "--out",
            bench.to_str().unwrap(),
        ]))
        .unwrap();
        let err = run(&args(&[
            "corrupt",
            "--in",
            bench.to_str().unwrap(),
            "--out",
            bench.to_str().unwrap(),
            "--r",
            "1.5",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("within"));
    }

    #[test]
    fn unknown_profile_reported() {
        let err = run(&args(&[
            "generate",
            "--profile",
            "b99",
            "--out",
            tmp("x.bench").to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown profile"));
    }

    #[test]
    fn verilog_output_supported() {
        let v = tmp("gen.v");
        run(&args(&[
            "generate",
            "--profile",
            "custom",
            "--ffs",
            "8",
            "--words",
            "2",
            "--gates",
            "40",
            "--out",
            v.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&v).unwrap();
        assert!(text.starts_with("module"));
    }
}
