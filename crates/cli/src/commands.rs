//! Implementation of the CLI subcommands.

use std::path::Path;

use rebert::{
    ari, load_model, save_model, train, training_samples, DatasetConfig, ReBertConfig, ReBertModel,
    TrainConfig,
};
use rebert_circuits::{corrupt, generate, profile, Profile};
use rebert_netlist::{optimize, NetlistStats};
use rebert_structural::{recover_words, StructuralConfig};

use crate::args::Args;
use crate::io::{read_labels, read_netlist, write_labels, write_netlist};

/// Top-level CLI error: any subcommand failure with a printable message.
pub type CliError = Box<dyn std::error::Error>;

/// A lint run that found problems. Carries the fully rendered report
/// (human or JSON, per `--json`) so `main` can print it to stdout —
/// where scripted consumers expect it — while still exiting non-zero.
#[derive(Debug)]
pub struct LintFailure {
    /// The rendered report body.
    pub body: String,
}

impl std::fmt::Display for LintFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.body)
    }
}

impl std::error::Error for LintFailure {}

/// Dispatches a parsed command line. Returns the text to print on
/// success (kept out of `main` so commands are unit-testable).
pub fn run(args: &Args) -> Result<String, CliError> {
    // Install tracing sinks first so every subcommand's spans land in
    // them; the guard uninstalls (and writes `--trace-out`) when the
    // command returns, success or failure.
    let _trace = crate::tracing::init(args)?;
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "corrupt" => cmd_corrupt(args),
        "optimize" => cmd_optimize(args),
        "stats" => cmd_stats(args),
        "lint" => cmd_lint(args),
        "lint-src" => cmd_lint_src(args),
        "train" => cmd_train(args),
        "recover" => cmd_recover(args),
        "inspect" => cmd_inspect(args),
        "serve" => cmd_serve(args),
        "submit" => cmd_submit(args),
        "models" => cmd_models(args),
        "batch" => cmd_batch(args),
        "help" | "--help" | "-h" => Ok(HELP.to_owned()),
        other => Err(format!("unknown subcommand `{other}` (try `rebert help`)").into()),
    }
}

/// The CLI usage text.
pub const HELP: &str = "\
rebert — gate-level to word-level netlist reverse engineering

USAGE: rebert <command> [options]

COMMANDS
  generate  --profile <b03|...|custom> --out <file[.bench|.v]>
            [--seed N] [--gates N --ffs N --words N]
            Generate a benchmark circuit; writes ground-truth labels to
            <out>.labels.json.
  corrupt   --in <file> --out <file> --r <0..1> [--seed N]
            Apply R-Index equivalence-preserving gate replacement.
  optimize  --in <file> --out <file>
            Constant folding, buffer sweeping, dead-logic elimination.
  stats     --in <file>
            Print gate/FF/word-relevant statistics.
  lint      --in <file> [--json] [--deny warnings] [--k N]
            [--model <model.json>]
            Run the static-analysis battery: undriven / multi-driven
            nets, floating DFF inputs, combinational cycles (full path),
            dead logic, foldable constants, cones truncated past k
            levels. With --model, also audit vocabulary coverage and the
            Jaccard pre-filter threshold against that checkpoint. Exits
            non-zero on errors (or on warnings under --deny warnings);
            --json renders machine-readable diagnostics.
  lint-src  [--root <dir|file.rs>] [--json] [--deny warnings]
            Run the concurrency-hygiene lints over Rust sources (default
            --root .): raw std::sync::{Mutex,RwLock,Condvar} outside the
            rebert-sync wrapper, Ordering::Relaxed stores, lock-result
            .unwrap()/.expect() on the serve/registry request path, and
            `static mut`. Suppress a finding with an inline
            `// rebert-lint: allow(<code>)` comment on the same or the
            preceding line. Exit semantics match `lint`; diagnostics
            carry file:line (also in --json).
  train     --profiles <b03,b08,...> --model <out.json>
            [--seed N] [--epochs N] [--cap N]
            Generate training benchmarks and fit a ReBERT model.
  recover   --model <model.json> --in <file>
            [--labels <labels.json>] [--baseline] [--threads N]
            [--precision <f32|f32-simd|int8>]
            [--cache-dir <dir>] [--cache-bytes N]
            Recover words on the batched inference engine (--threads 0 =
            all cores, the default); the quadratic phase deduplicates
            structurally identical cones and scores each unique class
            pair once; prints per-phase timings, pair throughput, and
            cone-dedup counters; print ARI when labels are given;
            --baseline also runs structural matching. --precision picks
            the scoring backend: f32 (default, bitwise-reproducible),
            f32-simd (runtime-dispatched AVX2/NEON kernels), or int8
            (per-row quantized weights); unsupported choices fall back
            to scalar and the resolved backend is printed. --cache-dir
            persists the content-addressed score cache (keyed by the
            checkpoint fingerprint) so an edited-and-resubmitted design
            only re-scores the cones the edit touched; --cache-bytes
            bounds it (default 64 MiB). Cached scores are bitwise
            identical to fresh ones.
  inspect   --model <model.json> [--cache-dir <dir>]
            Print a checkpoint's identity: architecture summary,
            parameter count, vocabulary size, and the stable fingerprint
            that keys the score cache and the serve /metrics info
            series. Also reports whether a persisted
            score-cache-<fingerprint>.bin exists (beside the checkpoint,
            or under --cache-dir) and how many entries it holds.
  serve     --model <model.json> [--addr <host:port>] [--threads N]
            [--queue N] [--deadline-ms N] [--web]
            [--cache-bytes N] [--cache-dir <dir>]
            Run the resident word-recovery daemon: the checkpoint loads
            once and stays warm across requests. POST /recover accepts
            .bench or Verilog bodies; GET /metrics exposes Prometheus
            counters, queue depth, per-phase histograms, and score-cache
            hit/miss/eviction series; a full queue answers 503 +
            Retry-After; SIGTERM/SIGINT (or POST /shutdown) drains
            in-flight work and exits cleanly. The daemon keeps a
            cross-request score cache (--cache-bytes, default 64 MiB,
            0 disables); with --cache-dir it persists across restarts
            (stale-fingerprint files are ignored), so resubmits after a
            restart are served warm. Requests may opt out per-call with
            the X-Rebert-No-Cache header. The daemon hosts a model
            registry: POST /models/<name>/load hot-swaps checkpoints
            without dropping in-flight requests, and requests pick a
            model with X-Rebert-Model. --tenant-quota N enforces a
            per-tenant token bucket of N requests/second (keyed by
            X-Rebert-Tenant; over-quota requests get 429 +
            Retry-After). --web serves the embedded operator dashboard
            at GET / (live stat tiles from /debug/stats, a streaming
            phase waterfall, a recovered-word bit heatmap) — one
            self-contained page, no build step or external assets.
            Defaults: --addr 127.0.0.1:7878, --queue 32,
            --deadline-ms 0 (unbounded), --tenant-quota off, --web off.
  submit    --addr <host:port> --in <file> [--labels <labels.json>]
            [--deadline-ms N] [--precision <f32|f32-simd|int8>]
            [--no-cache] [--stream] [--model <name>] [--tenant <id>]
            Send a netlist to a running daemon and print the recovered
            words (ARI when labels are given); --precision rides along
            as the X-Rebert-Precision header; --no-cache asks the
            daemon to score from scratch (X-Rebert-No-Cache); --stream
            uses POST /recover/stream and prints live per-phase
            progress lines while the daemon works (the final result is
            identical either way); --model picks a resident registry
            model (X-Rebert-Model); --tenant attributes the request to
            a quota bucket (X-Rebert-Tenant).
  models    --addr <host:port> [--load <model.json> --name <name>]
            List a daemon's resident models (name, version,
            fingerprint, served counters, cache stats). With --load,
            hot-load the checkpoint at that path (as seen by the
            daemon) under --name instead: the new version is published
            atomically and in-flight requests finish on the old one.
  batch     --addr <host:port> --in <f1,f2,...> [--format <bench|verilog>]
            [--model <name>] [--tenant <id>] [--deadline-ms N]
            [--precision <f32|f32-simd|int8>] [--no-cache]
            Pack the named netlist files into one POST /batch archive
            and stream the daemon's per-netlist NDJSON results as they
            finish; per-entry failures are reported inline without
            aborting the rest of the batch.
  help      Show this text.

OBSERVABILITY (train / recover / serve / submit)
  --log-level <error|warn|info|debug|trace>
            Mirror span and event records to stderr (the REBERT_LOG
            environment variable sets the same default).
  --trace-out <file.json>
            On exit, write a Chrome trace-event timeline of the run —
            pipeline phases, per-worker scoring batches, training
            epochs, served requests — loadable in Perfetto
            (https://ui.perfetto.dev) or chrome://tracing.

Unknown options and flags are rejected with a nearest-spelling hint.
";

/// `--options` and bare flags accepted per subcommand; [`run`] enforces
/// them via [`Args::expect_only`] before any value is read.
const COMMAND_TABLES: &[(&str, &[&str], &[&str])] = &[
    (
        "generate",
        &["profile", "out", "seed", "gates", "ffs", "words"],
        &[],
    ),
    ("corrupt", &["in", "out", "r", "seed"], &[]),
    ("optimize", &["in", "out"], &[]),
    ("stats", &["in"], &[]),
    ("lint", &["in", "k", "model", "deny"], &["json"]),
    ("lint-src", &["root", "deny"], &["json"]),
    (
        "train",
        &[
            "profiles",
            "model",
            "seed",
            "epochs",
            "cap",
            "k",
            "log-level",
            "trace-out",
        ],
        &[],
    ),
    (
        "recover",
        &[
            "model",
            "in",
            "labels",
            "threads",
            "precision",
            "cache-dir",
            "cache-bytes",
            "log-level",
            "trace-out",
        ],
        &["baseline"],
    ),
    ("inspect", &["model", "cache-dir"], &[]),
    (
        "serve",
        &[
            "model",
            "addr",
            "threads",
            "queue",
            "deadline-ms",
            "cache-bytes",
            "cache-dir",
            "tenant-quota",
            "log-level",
            "trace-out",
        ],
        &["web"],
    ),
    (
        "submit",
        &[
            "addr",
            "in",
            "labels",
            "deadline-ms",
            "precision",
            "model",
            "tenant",
            "log-level",
            "trace-out",
        ],
        &["no-cache", "stream"],
    ),
    ("models", &["addr", "load", "name"], &[]),
    (
        "batch",
        &[
            "addr",
            "in",
            "format",
            "model",
            "tenant",
            "deadline-ms",
            "precision",
            "log-level",
            "trace-out",
        ],
        &["no-cache"],
    ),
];

/// Rejects any option or flag the subcommand's table does not list.
fn validate(args: &Args) -> Result<(), CliError> {
    let (_, options, flags) = COMMAND_TABLES
        .iter()
        .find(|(name, _, _)| *name == args.command)
        .ok_or_else(|| format!("no option table for `{}`", args.command))?;
    args.expect_only(options, flags)?;
    Ok(())
}

fn parse_profile(args: &Args) -> Result<Profile, CliError> {
    let name = args.require("profile")?;
    if let Some(p) = profile(name) {
        return Ok(p);
    }
    if name == "custom" {
        let gates = args.get_or("gates", 200usize)?;
        let ffs = args.get_or("ffs", 32usize)?;
        let words = args.get_or("words", 6usize)?;
        return Ok(Profile::new("custom", gates, ffs, words));
    }
    Err(format!("unknown profile `{name}` (b03..b18 or `custom`)").into())
}

fn cmd_generate(args: &Args) -> Result<String, CliError> {
    validate(args)?;
    let p = parse_profile(args)?;
    let seed = args.get_or("seed", 42u64)?;
    let out = Path::new(args.require("out")?);
    let circuit = generate(&p, seed);
    write_netlist(&circuit.netlist, out)?;
    let labels_path = out.with_extension("labels.json");
    write_labels(&circuit.labels, &labels_path)?;
    Ok(format!(
        "generated `{}`: {} gates, {} FFs, {} words -> {} (+ {})",
        p.name,
        circuit.netlist.gate_count(),
        circuit.netlist.dff_count(),
        circuit.labels.word_count(),
        out.display(),
        labels_path.display()
    ))
}

fn cmd_corrupt(args: &Args) -> Result<String, CliError> {
    validate(args)?;
    let input = read_netlist(Path::new(args.require("in")?))?;
    let r: f64 = args.get_or("r", 0.4)?;
    if !(0.0..=1.0).contains(&r) {
        return Err(format!("--r must be within [0, 1], got {r}").into());
    }
    let seed = args.get_or("seed", 1u64)?;
    let (bad, stats) = corrupt(&input, r, seed);
    let out = Path::new(args.require("out")?);
    write_netlist(&bad, out)?;
    Ok(format!(
        "corrupted {} / {} gates (R-Index {r}) -> {}",
        stats.replaced,
        stats.visited,
        out.display()
    ))
}

fn cmd_optimize(args: &Args) -> Result<String, CliError> {
    validate(args)?;
    let input = read_netlist(Path::new(args.require("in")?))?;
    let (opt, stats) = optimize(&input);
    let out = Path::new(args.require("out")?);
    write_netlist(&opt, out)?;
    Ok(format!(
        "optimized: {} -> {} gates ({} folded, {} buffers swept, {} dead removed) -> {}",
        input.gate_count(),
        opt.gate_count(),
        stats.gates_folded,
        stats.buffers_swept,
        stats.dead_gates_removed,
        out.display()
    ))
}

fn cmd_stats(args: &Args) -> Result<String, CliError> {
    validate(args)?;
    let input = read_netlist(Path::new(args.require("in")?))?;
    let st = NetlistStats::of(&input);
    let mut out = format!("{st}\n");
    for (g, n) in &st.by_type {
        out.push_str(&format!("  {g:<5} {n}\n"));
    }
    Ok(out)
}

fn cmd_lint(args: &Args) -> Result<String, CliError> {
    validate(args)?;
    let path = Path::new(args.require("in")?);
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    let format = if crate::io::is_verilog(path) {
        rebert_analyze::SourceFormat::Verilog
    } else {
        rebert_analyze::SourceFormat::Bench
    };
    let deny_warnings = match args.get("deny") {
        None => false,
        Some("warnings") => true,
        Some(other) => return Err(format!("--deny accepts only `warnings`, got `{other}`").into()),
    };

    let mut opts = rebert_analyze::LintOptions::default();
    if let Some(model_path) = args.get("model") {
        // Pipeline checks are calibrated to the checkpoint that will
        // consume the netlist: its cone depth, code width, vocabulary
        // size, and Jaccard pre-filter threshold.
        let model = load_model(Path::new(model_path))?;
        let cfg = model.config();
        opts.k_levels = cfg.k_levels;
        opts.code_width = cfg.code_width;
        opts.jaccard_threshold = Some(cfg.jaccard_threshold);
        opts.vocab_rows = Some(model.vocab().len());
    }
    opts.k_levels = args.get_or("k", opts.k_levels)?;

    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("netlist");
    let report = match rebert_analyze::lint_source(name, &text, format) {
        Ok(nl) => rebert_analyze::lint_with(&nl, &opts),
        Err(report) => report,
    };

    let body = if args.flag("json") {
        report.to_json().to_string()
    } else {
        report.render_human()
    };
    if report.fails(deny_warnings) {
        Err(Box::new(LintFailure { body }))
    } else {
        Ok(body)
    }
}

fn cmd_lint_src(args: &Args) -> Result<String, CliError> {
    validate(args)?;
    let root = Path::new(args.get("root").unwrap_or("."));
    let deny_warnings = match args.get("deny") {
        None => false,
        Some("warnings") => true,
        Some(other) => return Err(format!("--deny accepts only `warnings`, got `{other}`").into()),
    };
    let report = rebert_analyze::lint_rust_tree(root)?;
    let body = if args.flag("json") {
        report.to_json().to_string()
    } else {
        report.render_human()
    };
    if report.fails(deny_warnings) {
        Err(Box::new(LintFailure { body }))
    } else {
        Ok(body)
    }
}

fn cmd_train(args: &Args) -> Result<String, CliError> {
    validate(args)?;
    let names = args.require("profiles")?;
    let seed = args.get_or("seed", 42u64)?;
    let circuits: Vec<_> = names
        .split(',')
        .map(|n| {
            profile(n.trim())
                .map(|p| generate(&p, seed ^ n.len() as u64))
                .ok_or_else(|| format!("unknown profile `{n}`"))
        })
        .collect::<Result<_, _>>()?;
    let refs: Vec<_> = circuits.iter().collect();

    let mut mcfg = ReBertConfig::small();
    mcfg.k_levels = args.get_or("k", 4usize)?;
    let mut dcfg = DatasetConfig::for_model(&mcfg);
    dcfg.max_per_circuit = args.get_or("cap", 700usize)?;
    dcfg.r_indexes = vec![0.0, 0.4, 0.8];
    let samples = training_samples(&refs, &dcfg, seed);

    let mut model = ReBertModel::new(mcfg, seed);
    let report = train(
        &mut model,
        &samples,
        &TrainConfig {
            epochs: args.get_or("epochs", 8usize)?,
            lr: 1e-3,
            batch_size: 16,
            seed,
            weight_decay: 0.01,
            warmup_frac: 0.1,
        },
    );
    let model_path = Path::new(args.require("model")?);
    save_model(&model, model_path)?;
    Ok(format!(
        "trained on {} samples (final loss {:.3}, accuracy {:.3}) -> {}",
        report.samples,
        report.epoch_losses.last().copied().unwrap_or(0.0),
        report.final_accuracy,
        model_path.display()
    ))
}

/// Parses a `--precision` value into a backend, with a usage error
/// naming the accepted labels.
fn parse_precision(args: &Args) -> Result<rebert::Backend, CliError> {
    match args.get("precision") {
        None => Ok(rebert::Backend::F32Scalar),
        Some(raw) => rebert::Backend::parse(raw).ok_or_else(|| {
            format!("--precision accepts `f32`, `f32-simd`, or `int8`, got `{raw}`").into()
        }),
    }
}

fn cmd_recover(args: &Args) -> Result<String, CliError> {
    validate(args)?;
    let model = load_model(Path::new(args.require("model")?))?;
    let input = read_netlist(Path::new(args.require("in")?))?;
    let threads = args.get_or("threads", 0usize)?;
    let backend = parse_precision(args)?;
    let k_levels = model.config().k_levels;

    // With --cache-dir the quadratic phase consults a persistent
    // content-addressed score cache keyed by the checkpoint fingerprint:
    // re-running on an edited design only re-scores the cone pairs the
    // edit touched, bitwise-identically to a cold run.
    let cache_bytes = args.get_or("cache-bytes", 64usize << 20)?;
    let (rec, cache_line) = match args.get("cache-dir") {
        None => (model.recover_words_backend(&input, threads, backend), None),
        Some(dir) => {
            let dir = Path::new(dir);
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create cache dir `{}`: {e}", dir.display()))?;
            let path = dir.join(format!("score-cache-{}.bin", model.fingerprint_hex()));
            let cache = std::sync::Arc::new(rebert::ScoreCache::load_or_new(
                &path,
                cache_bytes,
                model.fingerprint(),
            ));
            let session =
                rebert::RecoverySession::with_cache(model, threads, std::sync::Arc::clone(&cache));
            let rec = session
                .try_recover_opts(&input, &rebert::CancelToken::new(), backend, true)
                .expect("a fresh token never cancels");
            cache
                .flush(&path)
                .map_err(|e| format!("cannot flush score cache `{}`: {e}", path.display()))?;
            let line = format!(
                "  score cache: {} hits | {} misses | {} entries resident -> {}\n",
                rec.stats.cache_hits,
                rec.stats.cache_misses,
                cache.len(),
                path.display()
            );
            (rec, Some(line))
        }
    };
    let s = &rec.stats;
    let mut out = format!(
        "{}: {} bits -> {} words ({} pairs scored, {} filtered, {:?})\n",
        input.name(),
        rec.assignment.len(),
        rec.words().len(),
        s.pairs_scored,
        s.pairs_filtered,
        s.elapsed
    );
    out.push_str(&format!(
        "  phases: tokenize {:?} | filter {:?} | score {:?} ({:.0} pairs/s, {} threads, {} backend) | group {:?}\n",
        s.tokenize_time,
        s.filter_time,
        s.score_time,
        s.pairs_per_sec,
        rebert::resolve_threads(threads),
        s.backend,
        s.group_time
    ));
    out.push_str(&format!(
        "  cone dedup: {} classes | {} class pairs scored | {} pairs memoized\n",
        s.classes, s.class_pairs_scored, s.pairs_memoized
    ));
    if let Some(line) = cache_line {
        out.push_str(&line);
    }
    for (wi, word) in rec.words().iter().enumerate() {
        let names: Vec<&str> = word
            .iter()
            .map(|&b| input.net_name(input.bits()[b]))
            .collect();
        out.push_str(&format!("  word {wi}: {names:?}\n"));
    }
    if let Some(labels_path) = args.get("labels") {
        let labels = read_labels(Path::new(labels_path))?;
        let truth = labels.assignment();
        out.push_str(&format!(
            "ReBERT ARI: {:.3}\n",
            ari(&truth, &rec.assignment)
        ));
        if args.flag("baseline") {
            let scfg = StructuralConfig {
                k_levels,
                threads,
                ..Default::default()
            };
            let srec = recover_words(&input, &scfg);
            out.push_str(&format!(
                "Structural ARI: {:.3}\n",
                ari(&truth, &srec.assignment)
            ));
        }
    }
    Ok(out)
}

/// `rebert inspect`: print a checkpoint's identity without running
/// anything — architecture, parameter count, vocabulary size, and the
/// stable fingerprint that keys the score cache and the daemon's
/// `rebert_model_info` metrics series.
fn cmd_inspect(args: &Args) -> Result<String, CliError> {
    validate(args)?;
    let path = Path::new(args.require("model")?);
    let model = load_model(path)?;
    let cfg = model.config();
    let mut params = 0usize;
    let mut tensors = 0usize;
    for (_, _, t) in model.store().iter() {
        params += t.data().len();
        tensors += 1;
    }
    let mut out = format!(
        "{}\n  fingerprint: {}\n  encoder: d_model {} | {} layers | {} heads | ff {} | max seq {}\n  pipeline: k-levels {} | code width {} | jaccard threshold {}\n  parameters: {params} floats across {tensors} tensors\n  vocabulary: {} tokens\n",
        path.display(),
        model.fingerprint_hex(),
        cfg.bert.d_model,
        cfg.bert.n_layers,
        cfg.bert.n_heads,
        cfg.bert.d_ff,
        cfg.max_seq,
        cfg.k_levels,
        cfg.code_width,
        cfg.jaccard_threshold,
        model.vocab().len(),
    );
    // Report the persisted score cache that would serve this checkpoint:
    // under --cache-dir when given, else beside the checkpoint itself.
    let cache_dir = args.get("cache-dir").map_or_else(
        || path.parent().unwrap_or(Path::new(".")).to_path_buf(),
        std::path::PathBuf::from,
    );
    let cache_path = cache_dir.join(format!("score-cache-{}.bin", model.fingerprint_hex()));
    match rebert::ScoreCache::peek_file(&cache_path) {
        Some(info) => out.push_str(&format!(
            "  score cache: {} ({} entries, {} bytes)\n",
            cache_path.display(),
            info.entries,
            info.bytes,
        )),
        None => out.push_str(&format!(
            "  score cache: none at {}\n",
            cache_path.display()
        )),
    }
    Ok(out)
}

fn cmd_serve(args: &Args) -> Result<String, CliError> {
    validate(args)?;
    let model = load_model(Path::new(args.require("model")?))?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    let threads = args.get_or("threads", 0usize)?;
    let queue = args.get_or("queue", 32usize)?;
    let deadline_ms = args.get_or("deadline-ms", 0u64)?;
    let cache_bytes = args.get_or("cache-bytes", 64usize << 20)?;
    // The persisted cache file lives beside the checkpoint's identity:
    // its name embeds the fingerprint, and the loader additionally
    // verifies the fingerprint in the header, so a re-trained model
    // silently starts cold instead of serving stale scores.
    let cache_dir = match args.get("cache-dir") {
        None => None,
        Some(dir) => {
            let dir = Path::new(dir);
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create cache dir `{}`: {e}", dir.display()))?;
            Some(dir.to_path_buf())
        }
    };
    let tenant_quota = match args.get("tenant-quota") {
        None => None,
        Some(raw) => {
            let rate: f64 = raw
                .parse()
                .map_err(|_| format!("--tenant-quota expects requests/second, got `{raw}`"))?;
            if !rate.is_finite() || rate <= 0.0 {
                return Err(format!("--tenant-quota must be positive, got {rate}").into());
            }
            Some(rate)
        }
    };

    let session = rebert::RecoverySession::new(model, threads);
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    let config = rebert_serve::ServeConfig {
        queue_capacity: queue,
        default_deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        cache_bytes,
        cache_dir,
        tenant_quota,
        web: args.flag("web"),
        ..rebert_serve::ServeConfig::default()
    };
    let web = config.web;
    let server = rebert_serve::serve(session, listener, config)?;
    // Printed before the blocking drain loop so callers (and the CI
    // smoke test) can tell the daemon is up.
    println!(
        "rebert-serve listening on {} (queue {queue})",
        server.addr()
    );
    if web {
        println!("dashboard at http://{}/", server.addr());
    }
    rebert_serve::run_until_shutdown(server);
    Ok("drained in-flight work, shut down cleanly".to_owned())
}

/// Builds the request options shared by `submit` and `batch` from the
/// common `--deadline-ms` / `--precision` / `--no-cache` / `--model` /
/// `--tenant` surface. Precision is validated locally so typos fail
/// before the network hop; the daemon re-validates anyway.
fn submit_options(
    args: &Args,
    format: Option<&str>,
) -> Result<rebert_serve::SubmitOptions, CliError> {
    let deadline_ms = args.get_or("deadline-ms", 0u64)?;
    let precision = parse_precision(args)?;
    Ok(rebert_serve::SubmitOptions {
        format: format.map(str::to_owned),
        deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
        precision: args.get("precision").map(|_| precision.label().to_owned()),
        use_cache: !args.flag("no-cache"),
        model: args.get("model").map(str::to_owned),
        tenant: args.get("tenant").map(str::to_owned),
        request_id: None,
    })
}

/// One human line per NDJSON stream record (`rebert submit --stream`),
/// or `None` for records with nothing to show.
fn render_stream_record(line: &str) -> Option<String> {
    let rec = rebert::json::Json::parse(line).ok()?;
    let text = |key: &str| {
        rec.get(key)
            .and_then(rebert::json::Json::as_str)
            .unwrap_or("?")
            .to_owned()
    };
    let num = |key: &str| rec.get(key).and_then(rebert::json::Json::as_u64);
    match text("type").as_str() {
        "meta" => Some(format!(
            "streaming request {} | design {} | {} bits | model {}",
            text("request_id"),
            text("design"),
            num("bits").unwrap_or(0),
            text("model_fingerprint"),
        )),
        "error" => Some(format!("daemon reported: {}", text("error"))),
        "progress" => {
            let phase = text("phase");
            match text("event").as_str() {
                "begin" => Some(format!("  [{phase}] started")),
                "end" => Some(format!("  [{phase}] done")),
                "scoring" => Some(format!(
                    "  [score] {}/{} pairs ({:.1}%)",
                    num("done").unwrap_or(0),
                    num("total").unwrap_or(0),
                    rec.get("percent")
                        .and_then(rebert::json::Json::as_f64)
                        .unwrap_or(0.0),
                )),
                "update" => {
                    let mut line = format!("  [{phase}] {}%", num("pct").unwrap_or(0));
                    if let (Some(hits), Some(misses)) = (num("cache_hits"), num("cache_misses")) {
                        line.push_str(&format!(" | cache {hits} hits / {misses} misses"));
                    }
                    Some(line)
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn cmd_submit(args: &Args) -> Result<String, CliError> {
    validate(args)?;
    let addr = args.require("addr")?;
    let path = Path::new(args.require("in")?);
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    let format = if crate::io::is_verilog(path) {
        "verilog"
    } else {
        "bench"
    };
    let opts = submit_options(args, Some(format))?;
    let reply = if args.flag("stream") {
        rebert_serve::submit_stream(addr, &text, &opts, |record| {
            if let Some(line) = render_stream_record(record) {
                println!("{line}");
            }
        })
        .map_err(|e| format!("cannot reach daemon at `{addr}`: {e}"))?
    } else {
        rebert_serve::submit(addr, &text, &opts)
            .map_err(|e| format!("cannot reach daemon at `{addr}`: {e}"))?
    };
    if reply.status != 200 {
        // The request id lets the daemon side of a failure be found in
        // its logs and `GET /debug/trace` output.
        let request_id = reply.header("X-Rebert-Request-Id").unwrap_or("unknown");
        return Err(format!(
            "daemon answered {} (request {request_id}): {}",
            reply.status,
            reply.body_text().trim()
        )
        .into());
    }
    if args.flag("stream") && reply.body.is_empty() {
        // A 200 stream that ends without a result record carried an
        // error record instead (deadline, executor loss) — already
        // printed above by the record callback.
        let request_id = reply.header("X-Rebert-Request-Id").unwrap_or("unknown");
        return Err(format!(
            "stream for request {request_id} ended without a result (see lines above)"
        )
        .into());
    }

    let json = rebert::json::Json::parse(&reply.body_text())
        .map_err(|e| format!("unparseable daemon reply: {e}"))?;
    let field = |key: &str| -> Result<&rebert::json::Json, CliError> {
        json.get(key)
            .ok_or_else(|| format!("daemon reply lacks `{key}`").into())
    };
    let bits = field("bits")?.as_usize().unwrap_or(0);
    let words = field("words")?
        .as_array()
        .map(<[_]>::to_vec)
        .unwrap_or_default();
    let names = field("names")?
        .as_array()
        .map(<[_]>::to_vec)
        .unwrap_or_default();
    let stats = field("stats")?;
    let stat = |key: &str| {
        stats
            .get(key)
            .and_then(rebert::json::Json::as_u64)
            .unwrap_or(0)
    };

    let mut out = format!(
        "{}: {} bits -> {} words ({} pairs scored, {} filtered, {}ms on the daemon, {} backend)\n",
        field("design")?.as_str().unwrap_or("?"),
        bits,
        words.len(),
        stat("pairs_scored"),
        stat("pairs_filtered"),
        stat("elapsed_us") / 1000,
        stats
            .get("backend")
            .and_then(rebert::json::Json::as_str)
            .unwrap_or("?"),
    );
    out.push_str(&format!(
        "  cone dedup: {} classes | {} class pairs scored | {} pairs memoized\n",
        stat("classes"),
        stat("class_pairs_scored"),
        stat("pairs_memoized")
    ));
    out.push_str(&format!(
        "  score cache: {} hits | {} misses (model {})\n",
        stat("cache_hits"),
        stat("cache_misses"),
        field("model_fingerprint")?.as_str().unwrap_or("?"),
    ));
    for (wi, word) in words.iter().enumerate() {
        let members: Vec<&str> = word
            .as_array()
            .map(|bits| {
                bits.iter()
                    .filter_map(|b| b.as_usize())
                    .filter_map(|b| names.get(b).and_then(rebert::json::Json::as_str))
                    .collect()
            })
            .unwrap_or_default();
        out.push_str(&format!("  word {wi}: {members:?}\n"));
    }
    if let Some(labels_path) = args.get("labels") {
        let labels = read_labels(Path::new(labels_path))?;
        let assignment: Vec<usize> = field("assignment")?
            .as_array()
            .map(|a| a.iter().filter_map(|v| v.as_usize()).collect())
            .unwrap_or_default();
        if assignment.len() != bits {
            return Err("daemon reply assignment is malformed".into());
        }
        out.push_str(&format!(
            "ReBERT ARI: {:.3}\n",
            ari(&labels.assignment(), &assignment)
        ));
    }
    Ok(out)
}

/// `rebert models`: list a daemon's resident models, or hot-load a
/// checkpoint under a name (`--load <path> --name <name>`).
fn cmd_models(args: &Args) -> Result<String, CliError> {
    validate(args)?;
    let addr = args.require("addr")?;
    if let Some(ckpt) = args.get("load") {
        let name = args.require("name")?;
        let reply = rebert_serve::load_model_remote(addr, name, ckpt)
            .map_err(|e| format!("cannot reach daemon at `{addr}`: {e}"))?;
        if reply.status != 200 {
            return Err(format!(
                "daemon answered {}: {}",
                reply.status,
                reply.body_text().trim()
            )
            .into());
        }
        let json = rebert::json::Json::parse(&reply.body_text())
            .map_err(|e| format!("unparseable daemon reply: {e}"))?;
        let get_str = |key: &str| {
            json.get(key)
                .and_then(rebert::json::Json::as_str)
                .unwrap_or("?")
                .to_owned()
        };
        return Ok(format!(
            "loaded `{ckpt}` as {} v{} (fingerprint {}, swap {}us)\n",
            get_str("name"),
            json.get("version")
                .and_then(rebert::json::Json::as_u64)
                .unwrap_or(0),
            get_str("fingerprint"),
            json.get("swap_us")
                .and_then(rebert::json::Json::as_u64)
                .unwrap_or(0),
        ));
    }
    if args.get("name").is_some() {
        return Err("--name only makes sense with --load".into());
    }

    let reply = rebert_serve::list_models(addr)
        .map_err(|e| format!("cannot reach daemon at `{addr}`: {e}"))?;
    if reply.status != 200 {
        return Err(format!(
            "daemon answered {}: {}",
            reply.status,
            reply.body_text().trim()
        )
        .into());
    }
    let json = rebert::json::Json::parse(&reply.body_text())
        .map_err(|e| format!("unparseable daemon reply: {e}"))?;
    let models = json
        .get("models")
        .and_then(rebert::json::Json::as_array)
        .ok_or("daemon reply lacks `models`")?;
    let mut out = String::new();
    for m in models {
        let s = |key: &str| {
            m.get(key)
                .and_then(rebert::json::Json::as_str)
                .unwrap_or("?")
        };
        let n = |key: &str| m.get(key).and_then(rebert::json::Json::as_u64).unwrap_or(0);
        out.push_str(&format!(
            "{} v{} fingerprint {} ({} served)\n",
            s("name"),
            n("version"),
            s("fingerprint"),
            n("served_total"),
        ));
        if let Some(cache) = m.get("cache") {
            out.push_str(&format!(
                "  cache: {} entries | {} bytes | {} hits | {} misses\n",
                cache
                    .get("entries")
                    .and_then(rebert::json::Json::as_u64)
                    .unwrap_or(0),
                cache
                    .get("bytes")
                    .and_then(rebert::json::Json::as_u64)
                    .unwrap_or(0),
                cache
                    .get("hits")
                    .and_then(rebert::json::Json::as_u64)
                    .unwrap_or(0),
                cache
                    .get("misses")
                    .and_then(rebert::json::Json::as_u64)
                    .unwrap_or(0),
            ));
        }
    }
    let draining = json
        .get("retired_draining")
        .and_then(rebert::json::Json::as_u64)
        .unwrap_or(0);
    if draining > 0 {
        out.push_str(&format!("{draining} retired version(s) still draining\n"));
    }
    Ok(out)
}

/// `rebert batch`: pack netlist files into one `POST /batch` archive
/// and print the per-netlist NDJSON results.
fn cmd_batch(args: &Args) -> Result<String, CliError> {
    validate(args)?;
    let addr = args.require("addr")?;
    let mut entries: Vec<(String, String)> = Vec::new();
    for raw in args.require("in")?.split(',') {
        let path = Path::new(raw.trim());
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("netlist")
            .to_owned();
        entries.push((name, text));
    }
    if entries.is_empty() {
        return Err("--in lists no files".into());
    }
    let format = match args.get("format") {
        None | Some("bench" | "verilog") => args.get("format"),
        Some(other) => {
            return Err(format!("--format accepts `bench` or `verilog`, got `{other}`").into())
        }
    };
    let opts = submit_options(args, format)?;
    let archive =
        rebert_serve::batch_archive(entries.iter().map(|(n, t)| (n.as_str(), t.as_str())));
    let reply = rebert_serve::submit_batch(addr, &archive, &opts)
        .map_err(|e| format!("cannot reach daemon at `{addr}`: {e}"))?;
    if reply.status != 200 {
        let request_id = reply.header("X-Rebert-Request-Id").unwrap_or("unknown");
        return Err(format!(
            "daemon answered {} (request {request_id}): {}",
            reply.status,
            reply.body_text().trim()
        )
        .into());
    }

    let mut out = String::new();
    let mut failures = 0usize;
    let mut records = 0usize;
    for line in reply.body_text().lines().filter(|l| !l.trim().is_empty()) {
        let record = rebert::json::Json::parse(line)
            .map_err(|e| format!("unparseable batch record `{line}`: {e}"))?;
        records += 1;
        let name = record
            .get("name")
            .and_then(rebert::json::Json::as_str)
            .unwrap_or("?")
            .to_owned();
        let ok = record.get("ok").and_then(rebert::json::Json::as_bool) == Some(true);
        if ok {
            let words = record
                .get("words")
                .and_then(rebert::json::Json::as_array)
                .map_or(0, <[rebert::json::Json]>::len);
            let bits = record
                .get("bits")
                .and_then(rebert::json::Json::as_u64)
                .unwrap_or(0);
            out.push_str(&format!("{name}: {bits} bits -> {words} words\n"));
        } else {
            failures += 1;
            let error = record
                .get("error")
                .and_then(rebert::json::Json::as_str)
                .unwrap_or("unknown error");
            out.push_str(&format!("{name}: FAILED ({error})\n"));
        }
    }
    out.push_str(&format!(
        "{} netlists, {} ok, {} failed\n",
        records,
        records - failures,
        failures
    ));
    if failures > 0 {
        return Err(out.into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn args(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string())).expect("parse")
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rebert_cli_cmd_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&args(&["help"])).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("recover"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn generate_corrupt_optimize_stats_chain() {
        let bench = tmp("chain.bench");
        let out = run(&args(&[
            "generate",
            "--profile",
            "custom",
            "--gates",
            "120",
            "--ffs",
            "16",
            "--words",
            "4",
            "--seed",
            "5",
            "--out",
            bench.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("16 FFs"));
        assert!(bench.exists());
        assert!(tmp("chain.labels.json").exists());

        let bad = tmp("chain_bad.bench");
        let out = run(&args(&[
            "corrupt",
            "--in",
            bench.to_str().unwrap(),
            "--out",
            bad.to_str().unwrap(),
            "--r",
            "0.5",
        ]))
        .unwrap();
        assert!(out.contains("corrupted"));

        let opt = tmp("chain_opt.bench");
        let out = run(&args(&[
            "optimize",
            "--in",
            bad.to_str().unwrap(),
            "--out",
            opt.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("optimized"));

        let out = run(&args(&["stats", "--in", opt.to_str().unwrap()])).unwrap();
        assert!(out.contains("16 FFs"));
    }

    #[test]
    fn corrupt_rejects_bad_r() {
        let bench = tmp("badr.bench");
        run(&args(&[
            "generate",
            "--profile",
            "custom",
            "--ffs",
            "8",
            "--words",
            "2",
            "--gates",
            "50",
            "--out",
            bench.to_str().unwrap(),
        ]))
        .unwrap();
        let err = run(&args(&[
            "corrupt",
            "--in",
            bench.to_str().unwrap(),
            "--out",
            bench.to_str().unwrap(),
            "--r",
            "1.5",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("within"));
    }

    #[test]
    fn unknown_profile_reported() {
        let err = run(&args(&[
            "generate",
            "--profile",
            "b99",
            "--out",
            tmp("x.bench").to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown profile"));
    }

    #[test]
    fn typo_option_rejected_with_hint() {
        let err = run(&args(&["recover", "--modle", "m.json", "--in", "x.bench"])).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown option --modle"), "{msg}");
        assert!(msg.contains("did you mean --model?"), "{msg}");
    }

    #[test]
    fn lint_clean_netlist_passes() {
        let bench = tmp("lint_clean.bench");
        std::fs::write(
            &bench,
            "INPUT(a)\nINPUT(b)\nx = AND(a, b)\nq = DFF(x)\nOUTPUT(q)\n",
        )
        .unwrap();
        let out = run(&args(&["lint", "--in", bench.to_str().unwrap()])).unwrap();
        assert!(out.contains("clean"), "{out}");
    }

    #[test]
    fn lint_errors_fail_with_the_rendered_report() {
        let bench = tmp("lint_undriven.bench");
        std::fs::write(&bench, "INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n").unwrap();
        let err = run(&args(&["lint", "--in", bench.to_str().unwrap()])).unwrap_err();
        let lint = err
            .downcast_ref::<LintFailure>()
            .expect("lint failures carry their report");
        assert!(lint.body.contains("undriven-net"), "{}", lint.body);
        assert!(lint.body.contains("1 error"), "{}", lint.body);
    }

    #[test]
    fn lint_json_output_parses_with_rebert_json() {
        let bench = tmp("lint_json.bench");
        std::fs::write(&bench, "INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n").unwrap();
        let err = run(&args(&["lint", "--in", bench.to_str().unwrap(), "--json"])).unwrap_err();
        let body = &err.downcast_ref::<LintFailure>().unwrap().body;
        let json = rebert::json::Json::parse(body).expect("lint --json emits valid JSON");
        assert_eq!(
            json.get("errors").and_then(rebert::json::Json::as_usize),
            Some(1)
        );
        let diags = json
            .get("diagnostics")
            .and_then(rebert::json::Json::as_array)
            .unwrap();
        assert_eq!(
            diags[0].get("code").and_then(rebert::json::Json::as_str),
            Some("undriven-net")
        );
    }

    #[test]
    fn lint_deny_warnings_promotes_warnings_to_failure() {
        let bench = tmp("lint_dead.bench");
        std::fs::write(
            &bench,
            "INPUT(a)\nINPUT(b)\nx = AND(a, b)\ndead = XOR(a, b)\nq = DFF(x)\nOUTPUT(q)\n",
        )
        .unwrap();
        // Plain lint: warning, exit 0.
        let out = run(&args(&["lint", "--in", bench.to_str().unwrap()])).unwrap();
        assert!(out.contains("dead-logic"), "{out}");
        // --deny warnings: same report, now a failure.
        let err = run(&args(&[
            "lint",
            "--in",
            bench.to_str().unwrap(),
            "--deny",
            "warnings",
        ]))
        .unwrap_err();
        assert!(err.downcast_ref::<LintFailure>().is_some());
        // Any other --deny value is a usage error, not a lint failure.
        let err = run(&args(&[
            "lint",
            "--in",
            bench.to_str().unwrap(),
            "--deny",
            "everything",
        ]))
        .unwrap_err();
        assert!(err.downcast_ref::<LintFailure>().is_none());
    }

    #[test]
    fn lint_src_fixture_reports_every_code_at_its_pinned_line() {
        // The seeded fixture carries one violation per source-lint code
        // at documented lines, plus a suppressed one that must not
        // appear. CI shells through the same path.
        let fixture = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
            .join("examples/fixtures/srclint_violations.rs");
        let err = run(&args(&[
            "lint-src",
            "--root",
            fixture.to_str().unwrap(),
            "--json",
        ]))
        .unwrap_err();
        let body = &err.downcast_ref::<LintFailure>().unwrap().body;
        let json = rebert::json::Json::parse(body).expect("lint-src --json emits valid JSON");
        let diags = json
            .get("diagnostics")
            .and_then(rebert::json::Json::as_array)
            .unwrap();
        let found: Vec<(Option<&str>, Option<usize>)> = diags
            .iter()
            .map(|d| {
                (
                    d.get("code").and_then(rebert::json::Json::as_str),
                    d.get("line").and_then(rebert::json::Json::as_usize),
                )
            })
            .collect();
        assert_eq!(
            found,
            vec![
                (Some("raw-sync-primitive"), Some(10)),
                (Some("relaxed-publication-store"), Some(13)),
                (Some("lock-result-unwrap"), Some(17)),
                (Some("static-mut"), Some(20)),
            ],
            "{body}"
        );
    }

    #[test]
    fn lint_src_workspace_is_clean_under_deny_warnings() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let out = run(&args(&[
            "lint-src",
            "--root",
            root.to_str().unwrap(),
            "--deny",
            "warnings",
        ]))
        .unwrap();
        assert!(out.contains("clean"), "{out}");
    }

    #[test]
    fn lint_with_model_audits_pipeline_settings() {
        let model_path = tmp("lint_model.json");
        save_model(&ReBertModel::new(ReBertConfig::tiny(), 0), &model_path).unwrap();
        let bench = tmp("lint_model.bench");
        std::fs::write(
            &bench,
            "INPUT(a)\nINPUT(b)\nx = AND(a, b)\ny = OR(a, x)\nq0 = DFF(x)\nq1 = DFF(y)\nOUTPUT(q0)\nOUTPUT(q1)\n",
        )
        .unwrap();
        let out = run(&args(&[
            "lint",
            "--in",
            bench.to_str().unwrap(),
            "--model",
            model_path.to_str().unwrap(),
        ]))
        .unwrap();
        // The tiny checkpoint's vocabulary covers every token and the
        // netlist is structurally sound, so at most calibration
        // warnings appear — never an error.
        assert!(!out.contains("error["), "{out}");
        assert!(!out.contains("vocab-oov"), "{out}");
    }

    #[test]
    fn every_command_rejects_unknown_options() {
        for cmd in [
            "generate", "corrupt", "optimize", "stats", "lint", "train", "recover", "inspect",
            "serve", "submit", "models", "batch",
        ] {
            let err = run(&args(&[cmd, "--no-such-option", "x"])).unwrap_err();
            assert!(
                err.to_string().contains("unknown option"),
                "`{cmd}` accepted a bogus option: {err}"
            );
        }
    }

    #[test]
    fn stray_flag_rejected() {
        let err = run(&args(&[
            "recover",
            "--model",
            "m.json",
            "--in",
            "x.bench",
            "--baselines",
        ]))
        .unwrap_err();
        assert!(
            err.to_string().contains("did you mean --baseline?"),
            "{err}"
        );
    }

    #[test]
    fn serve_reports_bind_failures() {
        let model_path = tmp("serve_bind.model.json");
        save_model(&ReBertModel::new(ReBertConfig::tiny(), 0), &model_path).unwrap();
        let err = run(&args(&[
            "serve",
            "--model",
            model_path.to_str().unwrap(),
            "--addr",
            "256.0.0.1:99999",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("cannot bind"), "{err}");
    }

    #[test]
    fn submit_reports_unreachable_daemon() {
        let bench = tmp("submit_dead.bench");
        std::fs::write(&bench, "INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n").unwrap();
        let err = run(&args(&[
            "submit",
            "--addr",
            "127.0.0.1:1",
            "--in",
            bench.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("cannot reach daemon"), "{err}");
    }

    #[test]
    fn submit_round_trips_through_a_live_daemon() {
        // Boot an in-process daemon, then drive it through the exact
        // code path `rebert submit` users hit.
        let circuit = rebert_circuits::generate(&Profile::new("sub", 100, 8, 2), 11);
        let bench = tmp("submit_live.bench");
        let labels = tmp("submit_live.labels.json");
        write_netlist(&circuit.netlist, &bench).unwrap();
        write_labels(&circuit.labels, &labels).unwrap();

        let session = rebert::RecoverySession::new(ReBertModel::new(ReBertConfig::tiny(), 2), 1);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let server =
            rebert_serve::serve(session, listener, rebert_serve::ServeConfig::default()).unwrap();
        let addr = server.addr().to_string();

        let out = run(&args(&[
            "submit",
            "--addr",
            &addr,
            "--in",
            bench.to_str().unwrap(),
            "--labels",
            labels.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("8 bits"), "{out}");
        assert!(out.contains("word 0:"), "{out}");
        assert!(out.contains("cone dedup:"), "{out}");
        assert!(out.contains("ReBERT ARI:"), "{out}");
        server.shutdown();
    }

    #[test]
    fn submit_errors_carry_the_daemon_request_id() {
        // A netlist that parses but fails the daemon's lint pre-flight
        // (undriven `ghost`): submit must surface the 422 *and* the
        // request id so the failure can be found in `/debug/trace`.
        let bench = tmp("submit_422.bench");
        std::fs::write(&bench, "INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n").unwrap();

        let session = rebert::RecoverySession::new(ReBertModel::new(ReBertConfig::tiny(), 3), 1);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let server =
            rebert_serve::serve(session, listener, rebert_serve::ServeConfig::default()).unwrap();
        let addr = server.addr().to_string();

        let err = run(&args(&[
            "submit",
            "--addr",
            &addr,
            "--in",
            bench.to_str().unwrap(),
        ]))
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("daemon answered 422"), "{msg}");
        assert!(msg.contains("(request req-"), "{msg}");
        server.shutdown();
    }

    #[test]
    fn recover_precision_selects_backend_and_rejects_unknown_labels() {
        let bench = tmp("prec.bench");
        run(&args(&[
            "generate",
            "--profile",
            "custom",
            "--gates",
            "100",
            "--ffs",
            "10",
            "--words",
            "3",
            "--seed",
            "12",
            "--out",
            bench.to_str().unwrap(),
        ]))
        .unwrap();
        let model_path = tmp("prec.model.json");
        save_model(&ReBertModel::new(ReBertConfig::tiny(), 0), &model_path).unwrap();

        let recover = |extra: &[&str]| {
            let mut v = vec![
                "recover",
                "--model",
                model_path.to_str().unwrap(),
                "--in",
                bench.to_str().unwrap(),
            ];
            v.extend_from_slice(extra);
            run(&args(&v))
        };
        // Default and explicit f32 report the scalar backend.
        let out = recover(&[]).unwrap();
        assert!(out.contains("f32-scalar backend"), "{out}");
        let out = recover(&["--precision", "f32"]).unwrap();
        assert!(out.contains("f32-scalar backend"), "{out}");
        // int8 always resolves to itself (quantization is host-independent).
        let out = recover(&["--precision", "int8"]).unwrap();
        assert!(out.contains("int8 backend"), "{out}");
        // SIMD reports whatever the host resolves to.
        let out = recover(&["--precision", "f32-simd"]).unwrap();
        let resolved = rebert::Backend::F32Simd.effective().label();
        assert!(out.contains(&format!("{resolved} backend")), "{out}");
        // Unknown labels are a usage error naming the accepted set.
        let err = recover(&["--precision", "bf16"]).unwrap_err();
        assert!(err.to_string().contains("--precision accepts"), "{err}");
    }

    #[test]
    fn submit_precision_rides_the_header_and_is_validated_locally() {
        let circuit = rebert_circuits::generate(&Profile::new("subp", 90, 8, 2), 17);
        let bench = tmp("submit_prec.bench");
        write_netlist(&circuit.netlist, &bench).unwrap();

        let session = rebert::RecoverySession::new(ReBertModel::new(ReBertConfig::tiny(), 4), 1);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let server =
            rebert_serve::serve(session, listener, rebert_serve::ServeConfig::default()).unwrap();
        let addr = server.addr().to_string();

        let out = run(&args(&[
            "submit",
            "--addr",
            &addr,
            "--in",
            bench.to_str().unwrap(),
            "--precision",
            "int8",
        ]))
        .unwrap();
        assert!(out.contains("int8 backend"), "{out}");

        // A bad label never reaches the daemon.
        let err = run(&args(&[
            "submit",
            "--addr",
            "127.0.0.1:1",
            "--in",
            bench.to_str().unwrap(),
            "--precision",
            "fp8",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--precision accepts"), "{err}");
        server.shutdown();
    }

    #[test]
    fn inspect_prints_fingerprint_and_architecture() {
        let model_path = tmp("inspect.model.json");
        let model = ReBertModel::new(ReBertConfig::tiny(), 7);
        let fp = model.fingerprint_hex();
        save_model(&model, &model_path).unwrap();
        let out = run(&args(&["inspect", "--model", model_path.to_str().unwrap()])).unwrap();
        assert!(out.contains(&format!("fingerprint: {fp}")), "{out}");
        assert!(out.contains("d_model 16"), "{out}");
        assert!(out.contains("parameters:"), "{out}");
        assert!(out.contains("vocabulary:"), "{out}");
        // A different seed is a different checkpoint with a different
        // fingerprint, visibly.
        let other_path = tmp("inspect_other.model.json");
        save_model(&ReBertModel::new(ReBertConfig::tiny(), 8), &other_path).unwrap();
        let other = run(&args(&["inspect", "--model", other_path.to_str().unwrap()])).unwrap();
        assert!(!other.contains(&fp), "distinct weights, distinct identity");
    }

    #[test]
    fn inspect_reports_sibling_score_cache() {
        let dir = tmp("inspect_cache_dir");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("cacheable.model.json");
        let model = ReBertModel::new(ReBertConfig::tiny(), 9);
        let fp = model.fingerprint_hex();
        let fingerprint = model.fingerprint();
        save_model(&model, &model_path).unwrap();

        // No cache file yet: inspect says so.
        let out = run(&args(&["inspect", "--model", model_path.to_str().unwrap()])).unwrap();
        assert!(out.contains("score cache: none at"), "{out}");

        // Persist a small cache beside the checkpoint and re-inspect.
        let cache = rebert::ScoreCache::new(1 << 20, fingerprint);
        cache.insert(
            rebert::ScoreCache::pair_key(fingerprint, rebert::Backend::F32Scalar, 1, 2),
            0.5,
        );
        cache.insert(
            rebert::ScoreCache::pair_key(fingerprint, rebert::Backend::F32Scalar, 3, 4),
            -0.25,
        );
        let cache_path = dir.join(format!("score-cache-{fp}.bin"));
        cache.flush(&cache_path).unwrap();
        let out = run(&args(&["inspect", "--model", model_path.to_str().unwrap()])).unwrap();
        assert!(out.contains("2 entries"), "{out}");
        assert!(!out.contains("score cache: none"), "{out}");

        // --cache-dir pointing elsewhere reports the miss there.
        let other = tmp("inspect_cache_other");
        std::fs::create_dir_all(&other).unwrap();
        let out = run(&args(&[
            "inspect",
            "--model",
            model_path.to_str().unwrap(),
            "--cache-dir",
            other.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("score cache: none at"), "{out}");
    }

    #[test]
    fn models_lists_and_hot_loads_through_a_live_daemon() {
        let model_path = tmp("models_v2.model.json");
        let v2 = ReBertModel::new(ReBertConfig::tiny(), 21);
        let v2_fp = v2.fingerprint_hex();
        save_model(&v2, &model_path).unwrap();

        let session = rebert::RecoverySession::new(ReBertModel::new(ReBertConfig::tiny(), 20), 1);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let server =
            rebert_serve::serve(session, listener, rebert_serve::ServeConfig::default()).unwrap();
        let addr = server.addr().to_string();

        let out = run(&args(&["models", "--addr", &addr])).unwrap();
        assert!(out.contains("default v1"), "{out}");

        let out = run(&args(&[
            "models",
            "--addr",
            &addr,
            "--load",
            model_path.to_str().unwrap(),
            "--name",
            "default",
        ]))
        .unwrap();
        assert!(out.contains("default v2"), "{out}");
        assert!(out.contains(&v2_fp), "{out}");

        let out = run(&args(&["models", "--addr", &addr])).unwrap();
        assert!(out.contains("default v2"), "{out}");
        assert!(out.contains(&v2_fp), "{out}");

        // --name without --load is a usage error.
        let err = run(&args(&["models", "--addr", &addr, "--name", "x"])).unwrap_err();
        assert!(err.to_string().contains("--load"), "{err}");
        server.shutdown();
    }

    #[test]
    fn batch_round_trips_and_reports_per_entry_failures() {
        let good = rebert_circuits::generate(&Profile::new("bat", 90, 8, 2), 31);
        let good_path = tmp("batch_good.bench");
        write_netlist(&good.netlist, &good_path).unwrap();
        let bad_path = tmp("batch_bad.bench");
        std::fs::write(&bad_path, "INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n").unwrap();

        let session = rebert::RecoverySession::new(ReBertModel::new(ReBertConfig::tiny(), 22), 1);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let server =
            rebert_serve::serve(session, listener, rebert_serve::ServeConfig::default()).unwrap();
        let addr = server.addr().to_string();

        // All-good batch succeeds.
        let out = run(&args(&[
            "batch",
            "--addr",
            &addr,
            "--in",
            good_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("1 netlists, 1 ok, 0 failed"), "{out}");

        // A lint-failing entry is reported inline and turns the exit
        // non-zero, but the good entry still completes.
        let both = format!(
            "{},{}",
            good_path.to_str().unwrap(),
            bad_path.to_str().unwrap()
        );
        let err = run(&args(&["batch", "--addr", &addr, "--in", &both])).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("2 netlists, 1 ok, 1 failed"), "{msg}");
        assert!(msg.contains("batch_bad: FAILED"), "{msg}");
        assert!(msg.contains("batch_good:"), "{msg}");
        server.shutdown();
    }

    #[test]
    fn recover_cache_dir_persists_and_serves_hits_bitwise() {
        let bench = tmp("rcache.bench");
        run(&args(&[
            "generate",
            "--profile",
            "custom",
            "--gates",
            "100",
            "--ffs",
            "10",
            "--words",
            "3",
            "--seed",
            "23",
            "--out",
            bench.to_str().unwrap(),
        ]))
        .unwrap();
        let model_path = tmp("rcache.model.json");
        save_model(&ReBertModel::new(ReBertConfig::tiny(), 5), &model_path).unwrap();
        let cache_dir = tmp("rcache_dir");
        std::fs::remove_dir_all(&cache_dir).ok();

        let recover = |cached: bool| {
            let mut v = vec![
                "recover",
                "--model",
                model_path.to_str().unwrap(),
                "--in",
                bench.to_str().unwrap(),
                "--threads",
                "1",
            ];
            if cached {
                v.extend_from_slice(&["--cache-dir", cache_dir.to_str().unwrap()]);
            }
            run(&args(&v)).unwrap()
        };

        let cold = recover(false);
        let first = recover(true);
        assert!(first.contains("score cache: 0 hits"), "{first}");
        let persisted: Vec<_> = std::fs::read_dir(&cache_dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            persisted.iter().any(|n| n.starts_with("score-cache-")),
            "{persisted:?}"
        );

        let second = recover(true);
        assert!(second.contains("| 0 misses"), "{second}");
        // Word output (and everything before the cache line) matches the
        // cache-free run exactly: the cache changes cost, never answers.
        let words = |out: &str| {
            out.lines()
                .filter(|l| l.trim_start().starts_with("word "))
                .map(str::to_owned)
                .collect::<Vec<_>>()
        };
        assert_eq!(words(&cold), words(&first));
        assert_eq!(words(&cold), words(&second));
        assert!(!words(&cold).is_empty());
    }

    #[test]
    fn recover_trace_out_writes_phase_spans() {
        let bench = tmp("trace.bench");
        run(&args(&[
            "generate",
            "--profile",
            "custom",
            "--gates",
            "120",
            "--ffs",
            "12",
            "--words",
            "3",
            "--seed",
            "8",
            "--out",
            bench.to_str().unwrap(),
        ]))
        .unwrap();
        let model_path = tmp("trace.model.json");
        save_model(&ReBertModel::new(ReBertConfig::tiny(), 0), &model_path).unwrap();
        let trace_path = tmp("trace.json");

        let out = run(&args(&[
            "recover",
            "--model",
            model_path.to_str().unwrap(),
            "--in",
            bench.to_str().unwrap(),
            "--trace-out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("12 bits"), "{out}");

        let text = std::fs::read_to_string(&trace_path).unwrap();
        let json = rebert::json::Json::parse(&text).expect("trace parses with rebert::json");
        let events = json
            .get("traceEvents")
            .and_then(rebert::json::Json::as_array)
            .expect("traceEvents array")
            .to_vec();
        // All four pipeline phases appear as balanced duration spans.
        for phase in ["tokenize", "filter", "score", "group"] {
            for ph in ["B", "E"] {
                assert!(
                    events.iter().any(|e| {
                        e.get("name").and_then(rebert::json::Json::as_str) == Some(phase)
                            && e.get("ph").and_then(rebert::json::Json::as_str) == Some(ph)
                    }),
                    "missing {ph} event for phase `{phase}`"
                );
            }
        }
    }

    #[test]
    fn verilog_output_supported() {
        let v = tmp("gen.v");
        run(&args(&[
            "generate",
            "--profile",
            "custom",
            "--ffs",
            "8",
            "--words",
            "2",
            "--gates",
            "40",
            "--out",
            v.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&v).unwrap();
        assert!(text.starts_with("module"));
    }
}
