//! `rebert` — the command-line interface.
//!
//! Run `rebert help` for usage; see `crates/cli/src/commands.rs` for the
//! subcommand implementations.

mod args;
mod commands;
mod io;
mod tracing;

fn main() {
    let parsed = match args::Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::HELP);
            std::process::exit(2);
        }
    };
    match commands::run(&parsed) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            // A failed lint still prints its report to stdout (scripts
            // parse it, especially with --json); only the exit code
            // carries the verdict. Everything else is a plain error.
            if let Some(lint) = e.downcast_ref::<commands::LintFailure>() {
                println!("{lint}");
            } else {
                eprintln!("error: {e}");
            }
            std::process::exit(1);
        }
    }
}
