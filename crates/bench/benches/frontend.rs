//! Criterion micro-benchmarks of the netlist front end: binarization,
//! tree extraction, tokenization, Jaccard filtering, generation.

use criterion::{criterion_group, criterion_main, Criterion};
use rebert::{bit_sequences, jaccard, tokenize_bit, tree_codes};
use rebert_circuits::{generate, profile, Profile};
use rebert_netlist::{binarize, BitTree};

fn bench_frontend(c: &mut Criterion) {
    let circuit = generate(&profile("b11").expect("b11 exists"), 0xB11);
    let nl = &circuit.netlist;
    let (bin, _) = binarize(nl);
    let bits = bin.bits();

    let mut group = c.benchmark_group("frontend_b11");
    group.sample_size(20);
    group.bench_function("binarize", |b| b.iter(|| binarize(nl)));
    group.bench_function("tree_extract_all_k6", |b| {
        b.iter(|| {
            bits.iter()
                .map(|&bit| BitTree::extract(&bin, bit, 6))
                .collect::<Vec<_>>()
        })
    });
    let trees: Vec<BitTree> = bits
        .iter()
        .map(|&bit| BitTree::extract(&bin, bit, 6))
        .collect();
    group.bench_function("tokenize_all", |b| {
        b.iter(|| trees.iter().map(tokenize_bit).collect::<Vec<_>>())
    });
    group.bench_function("tree_codes_all", |b| {
        b.iter(|| trees.iter().map(|t| tree_codes(t, 32)).collect::<Vec<_>>())
    });
    group.bench_function("bit_sequences_k4", |b| b.iter(|| bit_sequences(nl, 4, 24)));
    let seqs = bit_sequences(nl, 4, 24);
    group.bench_function("jaccard_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for i in 0..seqs.len() {
                for j in i + 1..seqs.len() {
                    acc += jaccard(&seqs[i].0, &seqs[j].0);
                }
            }
            acc
        })
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    for (name, p) in [
        ("b03", profile("b03").expect("exists")),
        ("mid_500ff", Profile::new("mid", 2000, 500, 40)),
    ] {
        group.bench_function(name, |b| b.iter(|| generate(&p, 1)));
    }
    group.finish();
}

criterion_group!(benches, bench_frontend, bench_generation);
criterion_main!(benches);
