//! Criterion benchmarks for the tape-free batched inference engine:
//! `recover_words` end to end on an ITC'99-scale circuit, taped vs
//! tape-free single-pair prediction, per-backend scoring (scalar /
//! runtime-dispatched SIMD / int8), and the blocked matmul kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use rebert::{Backend, ReBertConfig, ReBertModel, ScoreScratch};
use rebert_circuits::{generate, Profile};
use rebert_tensor::{kernels, simd_level, Tensor};

/// An ITC'99-like profile (b03-class size) per the acceptance criterion.
fn itc99_like() -> Profile {
    Profile::new("itc99_like", 400, 32, 8)
}

fn bench_recover_end_to_end(c: &mut Criterion) {
    let circuit = generate(&itc99_like(), 0x1399);
    let mut cfg = ReBertConfig::small();
    cfg.k_levels = 4;
    let model = ReBertModel::new(cfg, 0);

    let mut group = c.benchmark_group("recover_words_itc99");
    group.sample_size(10);
    group.bench_function("engine_1_thread", |b| {
        b.iter(|| model.recover_words_with(&circuit.netlist, 1))
    });
    group.bench_function("engine_all_cores", |b| {
        b.iter(|| model.recover_words_with(&circuit.netlist, 0))
    });
    group.finish();
}

fn bench_predict_taped_vs_infer(c: &mut Criterion) {
    let circuit = generate(&itc99_like(), 0x1399);
    let mut cfg = ReBertConfig::small();
    cfg.k_levels = 4;
    let model = ReBertModel::new(cfg.clone(), 0);
    // One representative surviving pair from the real pipeline inputs.
    let seqs = rebert::bit_sequences(&circuit.netlist, cfg.k_levels, cfg.code_width);
    let (ta, ca) = &seqs[0];
    let (tb, cb) = &seqs[1];
    let pair = rebert::PairSequence::build(ta, ca, tb, cb, cfg.code_width, cfg.max_seq);

    let mut group = c.benchmark_group("predict_single_pair");
    group.bench_function("taped", |b| b.iter(|| model.predict(&pair)));
    group.bench_function("tape_free_cold", |b| b.iter(|| model.predict_infer(&pair)));
    let mut scratch = ScoreScratch::new();
    group.bench_function("tape_free_warm_scratch", |b| {
        b.iter(|| model.predict_with_scratch(&pair, &mut scratch))
    });
    group.finish();
}

/// Per-backend single-pair scoring and end-to-end recovery: the numbers
/// behind the EXPERIMENTS.md scalar / SIMD / int8 table. Unsupported
/// backends resolve to scalar, so the groups always run; labels carry
/// the *requested* backend.
fn bench_backends(c: &mut Criterion) {
    let circuit = generate(&itc99_like(), 0x1399);
    let mut cfg = ReBertConfig::small();
    cfg.k_levels = 4;
    let model = ReBertModel::new(cfg.clone(), 0);
    let seqs = rebert::bit_sequences(&circuit.netlist, cfg.k_levels, cfg.code_width);
    let (ta, ca) = &seqs[0];
    let (tb, cb) = &seqs[1];
    let pair = rebert::PairSequence::build(ta, ca, tb, cb, cfg.code_width, cfg.max_seq);
    // Quantize outside the timed region, as the pipeline does.
    model.int8_view();

    let mut group = c.benchmark_group("predict_pair_backend");
    for backend in Backend::ALL {
        let mut scratch = ScoreScratch::new();
        group.bench_function(backend.label(), |b| {
            b.iter(|| model.predict_with_scratch_backend(&pair, &mut scratch, backend))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("recover_words_backend_1_thread");
    group.sample_size(10);
    for backend in Backend::ALL {
        group.bench_function(backend.label(), |b| {
            b.iter(|| model.recover_words_backend(&circuit.netlist, 1, backend))
        });
    }
    group.finish();
}

fn bench_matmul_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let level = simd_level();
    for (m, k, n) in [(64usize, 64usize, 64usize), (128, 64, 256)] {
        let a = Tensor::full(m, k, 0.25);
        let bt = Tensor::full(k, n, 0.5);
        let nt = Tensor::full(n, k, 0.5);
        let mut out = Tensor::zeros(m, n);
        group.bench_function(format!("matmul_{m}x{k}x{n}"), |b| b.iter(|| a.matmul(&bt)));
        group.bench_function(format!("matmul_nt_{m}x{k}x{n}"), |b| {
            b.iter(|| a.matmul_nt(&nt))
        });
        group.bench_function(format!("matmul_simd_{m}x{k}x{n}"), |b| {
            b.iter(|| kernels::matmul_into(level, &a, &bt, &mut out))
        });
        group.bench_function(format!("matmul_nt_simd_{m}x{k}x{n}"), |b| {
            b.iter(|| kernels::matmul_nt_into(level, &a, &nt, &mut out))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_recover_end_to_end,
    bench_predict_taped_vs_infer,
    bench_backends,
    bench_matmul_kernels
);
criterion_main!(benches);
