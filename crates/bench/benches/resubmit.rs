//! Criterion benchmark for the edit-and-resubmit flow the score cache
//! exists for: a design is recovered once, ~1% of its gates are edited,
//! and the variant is resubmitted to the same warm session.
//!
//! `no_cache` is the pre-cache behaviour — a warm session (scratch
//! buffers resident, model loaded) that still scores every surviving
//! class pair of the edited design. `warm_cache` consults the shared
//! score cache, so only the cone pairs the edit touched hit the model.
//! Both paths return bitwise-identical words; the gap is pure scoring
//! work avoided.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rebert::{ReBertConfig, ReBertModel, RecoverySession, ScoreCache};
use rebert_bench::edited_variant;
use rebert_circuits::{generate, Profile};

/// Fraction of gates the resubmitted design changes.
const EDIT_FRAC: f64 = 0.01;

fn bench_resubmit(c: &mut Criterion) {
    let mut group = c.benchmark_group("resubmit");
    group.sample_size(10);
    for &bits in &[32usize, 64] {
        let circuit = generate(&Profile::new("resubmit", bits * 12, bits, bits / 4), 0xC0DE);
        let (edited, changed) = edited_variant(&circuit.netlist, EDIT_FRAC, 7);
        let mk = || ReBertModel::new(ReBertConfig::small(), 3);

        // Cache-disabled warm session: scratches and weights are
        // resident, but every class pair is scored from scratch.
        let plain = RecoverySession::new(mk(), 1);
        let baseline = plain.recover(&edited);
        group.bench_function(BenchmarkId::new("no_cache", bits), |b| {
            b.iter(|| plain.recover(&edited))
        });

        // Warm persistent cache: the original design and one resubmit
        // have populated it, so the measured runs are pure lookups.
        let model = mk();
        let cache = Arc::new(ScoreCache::new(64 << 20, model.fingerprint()));
        let session = RecoverySession::with_cache(model, 1, Arc::clone(&cache));
        session.recover(&circuit.netlist);
        let warm = session.recover(&edited);
        assert_eq!(
            warm.assignment, baseline.assignment,
            "cached resubmit answers must be identical ({changed} gates edited)"
        );
        group.bench_function(BenchmarkId::new("warm_cache", bits), |b| {
            b.iter(|| session.recover(&edited))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_resubmit);
criterion_main!(benches);
