//! Criterion micro-benchmarks of the model substrate: matmul kernels,
//! a single forward pass, and a single training (forward + backward +
//! Adam) step.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rebert::{PairSequence, ReBertConfig, ReBertModel, Token};
use rebert_nn::{Adam, Forward};
use rebert_tensor::{normal, Tensor};

fn demo_pair(cfg: &ReBertConfig, len_each: usize) -> PairSequence {
    let toks = vec![Token::X; len_each];
    let codes = vec![vec![0.0; cfg.code_width]; len_each];
    PairSequence::build(&toks, &codes, &toks, &codes, cfg.code_width, cfg.max_seq)
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = ChaCha20Rng::seed_from_u64(0);
    let mut group = c.benchmark_group("matmul");
    for n in [64usize, 128, 256] {
        let a = normal(&mut rng, n, n, 1.0);
        let b = normal(&mut rng, n, n, 1.0);
        group.bench_function(format!("{n}x{n}"), |bch| bch.iter(|| a.matmul(&b)));
    }
    let a = normal(&mut rng, 96, 64, 1.0);
    group.bench_function("96x64_nt", |bch| bch.iter(|| a.matmul_nt(&a)));
    group.finish();
}

fn bench_model(c: &mut Criterion) {
    let mut cfg = ReBertConfig::small();
    cfg.k_levels = 4;
    let model = ReBertModel::new(cfg.clone(), 0);
    let pair = demo_pair(&cfg, 31);

    let mut group = c.benchmark_group("model_small_seq64");
    group.sample_size(20);
    group.bench_function("forward", |b| b.iter(|| model.predict(&pair)));
    group.bench_function("forward_backward", |b| {
        b.iter(|| {
            let mut fwd = Forward::new(model.store());
            let z = model.logit_on(&mut fwd, &pair);
            let loss = fwd.tape.bce_with_logits(z, Tensor::from_rows(&[&[1.0]]));
            let grads = fwd.tape.backward(loss);
            fwd.param_grads(&grads)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    group.bench_function("adam_step_small", |b| {
        let mut model = ReBertModel::new(cfg.clone(), 0);
        let mut adam = Adam::new(1e-3);
        b.iter(|| {
            let pg = {
                let mut fwd = Forward::new(model.store());
                let z = model.logit_on(&mut fwd, &pair);
                let loss = fwd.tape.bce_with_logits(z, Tensor::from_rows(&[&[1.0]]));
                let grads = fwd.tape.backward(loss);
                fwd.param_grads(&grads)
            };
            adam.step(model.store_mut(), &pg);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_model);
criterion_main!(benches);
