//! Criterion benchmarks for the class-deduplicated quadratic phase:
//! filter/assembly sweeps (bit pairs vs cone-class pairs) and end-to-end
//! recovery at N ∈ {64, 256, 1024} bits with controlled cone duplication.
//!
//! The reference (bit-pair) recovery path is skipped at 1024 bits — it is
//! quadratic in bit pairs and would take minutes per sample; the scaling
//! trend is visible from 64 → 256.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rebert::{bit_sequences, jaccard, jaccard_counts, ConeClasses, ReBertConfig, ReBertModel};
use rebert_bench::duplicated_netlist;

/// Bench sizes in bits, per the acceptance criterion.
const SIZES: [usize; 3] = [64, 256, 1024];

/// Replication factor of each cone class (≥ 4× per the acceptance
/// criterion — ITC'99-style replicated datapath slices).
const DUPLICATION: usize = 8;

fn bench_filter_assembly(c: &mut Criterion) {
    let cfg = ReBertConfig::tiny();
    let mut group = c.benchmark_group("quadratic_filter");
    for &n in &SIZES {
        let nl = duplicated_netlist("dup_filter", n, DUPLICATION);
        let seqs = bit_sequences(&nl, cfg.k_levels, cfg.code_width);

        // PR 1 path: slice Jaccard once per bit pair.
        group.bench_with_input(BenchmarkId::new("bit_pairs", n), &seqs, |b, seqs| {
            b.iter(|| {
                let mut survivors = 0usize;
                for i in 0..seqs.len() {
                    for j in i + 1..seqs.len() {
                        if jaccard(&seqs[i].0, &seqs[j].0) >= cfg.jaccard_threshold {
                            survivors += 1;
                        }
                    }
                }
                survivors
            })
        });

        // Dedup path: classification + histogram Jaccard per class pair.
        group.bench_with_input(BenchmarkId::new("cone_classes", n), &seqs, |b, seqs| {
            b.iter(|| {
                let classes = ConeClasses::build(seqs);
                let k = classes.len() as u32;
                let mut survivors = 0usize;
                for a in 0..k {
                    for b2 in a..k {
                        if jaccard_counts(classes.histogram(a), classes.histogram(b2))
                            >= cfg.jaccard_threshold
                        {
                            survivors += 1;
                        }
                    }
                }
                survivors
            })
        });
    }
    group.finish();
}

fn bench_recover_end_to_end(c: &mut Criterion) {
    let model = ReBertModel::new(ReBertConfig::tiny(), 0);
    let mut group = c.benchmark_group("quadratic_recover");
    group.sample_size(10);
    for &n in &SIZES {
        let nl = duplicated_netlist("dup_recover", n, DUPLICATION);
        group.bench_function(BenchmarkId::new("dedup", n), |b| {
            b.iter(|| model.recover_words_with(&nl, 0))
        });
        if n <= 256 {
            group.bench_function(BenchmarkId::new("reference", n), |b| {
                b.iter(|| model.recover_words_reference(&nl, 0))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_filter_assembly, bench_recover_end_to_end);
criterion_main!(benches);
