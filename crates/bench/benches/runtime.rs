//! Criterion micro-benchmark behind **Table III**: end-to-end recovery
//! runtime of the structural baseline vs ReBERT on a b03-profile circuit,
//! clean and corrupted.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rebert::{ReBertConfig, ReBertModel};
use rebert_circuits::{corrupt, generate, profile};
use rebert_structural::{recover_words, StructuralConfig};

fn bench_recovery(c: &mut Criterion) {
    let circuit = generate(&profile("b03").expect("b03 exists"), 0xB03);
    let (corrupted, _) = corrupt(&circuit.netlist, 0.4, 7);
    let mut cfg = ReBertConfig::small();
    cfg.k_levels = 4;
    let model = ReBertModel::new(cfg, 0);
    let scfg = StructuralConfig {
        k_levels: 4,
        ..Default::default()
    };

    let mut group = c.benchmark_group("recovery_b03");
    group.sample_size(10);
    group.bench_function("structural_clean", |b| {
        b.iter(|| recover_words(&circuit.netlist, &scfg))
    });
    group.bench_function("structural_r04", |b| {
        b.iter(|| recover_words(&corrupted, &scfg))
    });
    group.bench_function("rebert_clean", |b| {
        b.iter(|| model.recover_words(&circuit.netlist))
    });
    group.bench_function("rebert_r04", |b| b.iter(|| model.recover_words(&corrupted)));
    group.finish();
}

fn bench_corruption(c: &mut Criterion) {
    let circuit = generate(&profile("b11").expect("b11 exists"), 0xB11);
    let mut group = c.benchmark_group("corruption_b11");
    group.sample_size(10);
    for r in [0.2f64, 1.0] {
        group.bench_function(format!("r{r}"), |b| {
            b.iter_batched(
                || circuit.netlist.clone(),
                |nl| corrupt(&nl, r, 1),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recovery, bench_corruption);
criterion_main!(benches);
