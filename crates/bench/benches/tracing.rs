//! Tracing overhead benchmarks.
//!
//! The shipped default is *no sink installed*: every instrumentation
//! point reduces to one relaxed atomic load. `recover_disabled` is the
//! acceptance column — it must sit within noise of the engine before
//! instrumentation existed. `recover_ring_debug` shows the cost of the
//! always-on serve ring, and `enabled_check` prices the gate itself.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use rebert::{ReBertConfig, ReBertModel};
use rebert_circuits::{generate, Profile};
use rebert_obs::{Level, RingSink};

fn bench_tracing_overhead(c: &mut Criterion) {
    let circuit = generate(&Profile::new("trace_bench", 400, 32, 8), 0x1399);
    let mut cfg = ReBertConfig::small();
    cfg.k_levels = 4;
    let model = ReBertModel::new(cfg, 0);

    let mut group = c.benchmark_group("tracing_overhead");
    group.sample_size(10);
    group.bench_function("recover_disabled", |b| {
        b.iter(|| model.recover_words_with(&circuit.netlist, 1))
    });
    group.bench_function("recover_ring_debug", |b| {
        let ring = Arc::new(RingSink::new(1 << 16, Level::Debug));
        let id = rebert_obs::install(ring.clone());
        b.iter(|| model.recover_words_with(&circuit.netlist, 1));
        rebert_obs::uninstall(id);
    });
    group.finish();

    // The disabled-path gate in isolation: one relaxed load + compare.
    c.bench_function("enabled_check_disabled", |b| {
        b.iter(|| criterion::black_box(rebert_obs::enabled(Level::Debug)))
    });
}

criterion_group!(benches, bench_tracing_overhead);
criterion_main!(benches);
