//! The daemon-backed evaluation path: instead of calling into the
//! model in-process, the LOO-CV harness boots a [`rebert_serve`]
//! daemon around a [`rebert_registry::ModelRegistry`], installs each
//! fold's model, and drives evaluation through `POST /batch` — the
//! same wire path production clients use. ARI is computed client-side
//! from the returned assignments, so the harness stays the source of
//! truth for ground-truth labels.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use rebert::{ari, ReBertModel};
use rebert_circuits::{corrupt, GeneratedCircuit};
use rebert_registry::{ModelRegistry, RegistryConfig};
use rebert_serve::{batch_archive, submit_batch, Server, SubmitOptions};

/// An in-process daemon wrapping a model registry, for benchmark runs
/// that want the full wire path without managing an external process.
pub struct DaemonHarness {
    registry: Arc<ModelRegistry>,
    server: Server,
}

impl DaemonHarness {
    /// Boots an empty-registry daemon on an ephemeral localhost port.
    ///
    /// # Panics
    ///
    /// Panics if the ephemeral port cannot be bound — benchmark
    /// harnesses have no useful recovery from that.
    pub fn start(threads: usize) -> DaemonHarness {
        let registry = Arc::new(ModelRegistry::new(RegistryConfig {
            threads,
            ..RegistryConfig::default()
        }));
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let server = rebert_serve::serve_registry(
            Arc::clone(&registry),
            listener,
            rebert_serve::ServeConfig::default(),
        )
        .expect("boot in-process daemon");
        DaemonHarness { registry, server }
    }

    /// The daemon's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Publishes `model` under `name` (hot-swapping any previous
    /// version) and returns its fingerprint.
    pub fn install(&self, name: &str, model: ReBertModel) -> String {
        self.registry
            .install(name, model)
            .fingerprint_hex()
            .to_owned()
    }

    /// Drains and stops the daemon.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

/// One `POST /batch` record, reduced to what the tables need.
#[derive(Debug, Clone)]
pub struct RemoteCell {
    /// ARI of the daemon-returned assignment against ground truth.
    pub rebert_ari: f64,
    /// Server-side recovery time for this netlist.
    pub rebert_time: Duration,
    /// Fingerprint of the model that actually served the netlist.
    pub model_fingerprint: String,
}

/// Evaluates `circuit` at each corruption level through one `POST
/// /batch` request against a running daemon. `model` picks the
/// registry entry (`None` = daemon default); `seed_of` maps an R-Index
/// position to its corruption seed, mirroring the offline harness.
///
/// # Errors
///
/// Transport failures, non-200 replies, and malformed or missing
/// records surface as `io::Error` — a benchmark run has nothing to
/// salvage from a half-answered batch.
pub fn evaluate_cells_remote(
    addr: SocketAddr,
    model: Option<&str>,
    circuit: &GeneratedCircuit,
    r_indexes: &[f64],
    seed_of: impl Fn(usize) -> u64,
) -> std::io::Result<Vec<RemoteCell>> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);

    let variants: Vec<(String, String)> = r_indexes
        .iter()
        .enumerate()
        .map(|(ri, &r)| {
            let netlist = if r == 0.0 {
                circuit.netlist.clone()
            } else {
                corrupt(&circuit.netlist, r, seed_of(ri)).0
            };
            (format!("r{ri}"), rebert_netlist::write_bench(&netlist))
        })
        .collect();
    let archive = batch_archive(variants.iter().map(|(n, t)| (n.as_str(), t.as_str())));
    let opts = SubmitOptions {
        format: Some("bench".to_owned()),
        model: model.map(str::to_owned),
        ..SubmitOptions::default()
    };
    let reply = submit_batch(addr, &archive, &opts)?;
    if reply.status != 200 {
        return Err(bad(format!(
            "daemon answered {}: {}",
            reply.status,
            reply.body_text().trim()
        )));
    }

    let truth = circuit.labels.assignment();
    let mut cells: Vec<Option<RemoteCell>> = vec![None; r_indexes.len()];
    for line in reply.body_text().lines().filter(|l| !l.trim().is_empty()) {
        let record = rebert::json::Json::parse(line)
            .map_err(|e| bad(format!("unparseable batch record `{line}`: {e}")))?;
        let index = record
            .get("index")
            .and_then(rebert::json::Json::as_usize)
            .ok_or_else(|| bad(format!("batch record lacks `index`: {line}")))?;
        if record.get("ok").and_then(rebert::json::Json::as_bool) != Some(true) {
            let error = record
                .get("error")
                .and_then(rebert::json::Json::as_str)
                .unwrap_or("unknown error");
            return Err(bad(format!("batch entry {index} failed: {error}")));
        }
        let assignment: Vec<usize> = record
            .get("assignment")
            .and_then(rebert::json::Json::as_array)
            .map(|a| a.iter().filter_map(rebert::json::Json::as_usize).collect())
            .ok_or_else(|| bad(format!("batch record lacks `assignment`: {line}")))?;
        if assignment.len() != truth.len() {
            return Err(bad(format!(
                "batch entry {index}: {} bits returned, {} expected",
                assignment.len(),
                truth.len()
            )));
        }
        let elapsed_us = record
            .get("stats")
            .and_then(|s| s.get("elapsed_us"))
            .and_then(rebert::json::Json::as_u64)
            .unwrap_or(0);
        let fingerprint = record
            .get("model_fingerprint")
            .and_then(rebert::json::Json::as_str)
            .unwrap_or("?")
            .to_owned();
        let slot = cells
            .get_mut(index)
            .ok_or_else(|| bad(format!("batch record index {index} out of range")))?;
        *slot = Some(RemoteCell {
            rebert_ari: ari(&truth, &assignment),
            rebert_time: Duration::from_micros(elapsed_us),
            model_fingerprint: fingerprint,
        });
    }
    cells
        .into_iter()
        .enumerate()
        .map(|(i, c)| c.ok_or_else(|| bad(format!("batch entry {i} never answered"))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{benchmark_suite, evaluate_cell, Scale, EXPERIMENT_SEED, R_INDEXES};
    use rebert::ReBertConfig;

    #[test]
    fn daemon_path_matches_local_evaluation_bitwise() {
        let suite = benchmark_suite(Scale::Fast);
        let circuit = &suite[0];
        // Model construction is deterministic in (config, seed), so the
        // daemon-resident copy and the local reference are identical.
        let model = ReBertModel::new(Scale::Fast.model_config(), 1);

        let harness = DaemonHarness::start(1);
        let fp = harness.install("fold0", ReBertModel::new(Scale::Fast.model_config(), 1));
        let seed_of = |ri: usize| EXPERIMENT_SEED ^ (ri as u64) << 8;
        let remote = evaluate_cells_remote(
            harness.addr(),
            Some("fold0"),
            circuit,
            &R_INDEXES[..2],
            seed_of,
        )
        .expect("batch round-trip");
        harness.shutdown();

        assert_eq!(remote.len(), 2);
        for (ri, cell) in remote.iter().enumerate() {
            let local = evaluate_cell(&model, circuit, R_INDEXES[ri], seed_of(ri));
            assert_eq!(
                cell.rebert_ari, local.rebert_ari,
                "daemon and in-process ARI must agree exactly at r={}",
                R_INDEXES[ri]
            );
            assert_eq!(cell.model_fingerprint, fp);
        }
    }

    #[test]
    fn remote_evaluation_surfaces_unknown_models() {
        let harness = DaemonHarness::start(1);
        harness.install("only", ReBertModel::new(ReBertConfig::tiny(), 0));
        let suite = benchmark_suite(Scale::Fast);
        let err = evaluate_cells_remote(
            harness.addr(),
            Some("missing"),
            &suite[0],
            &R_INDEXES[..1],
            |_| 0,
        )
        .expect_err("unknown model must not silently fall back");
        assert!(err.to_string().contains("404"), "{err}");
        harness.shutdown();
    }
}
