//! **Table I** — benchmark circuit statistics.
//!
//! Regenerates the paper's benchmark-information table for the synthetic
//! ITC'99-profile suite: gate count, flip-flop count, and word count per
//! benchmark, next to the profile targets.
//!
//! ```text
//! cargo run -p rebert-bench --release --bin table1 [--fast|--full-scale]
//! ```

use rebert_bench::{benchmark_suite, Scale, EXPERIMENT_SEED};
use rebert_netlist::NetlistStats;

fn main() {
    let scale = Scale::from_args();
    let suite = benchmark_suite(scale);
    println!("Table I — benchmark circuits ({scale:?} scale, seed {EXPERIMENT_SEED:#x})");
    println!(
        "{:<6} {:>12} {:>8} {:>7} {:>6} {:>6}   target gates (profile)",
        "bench", "#gates", "#FFs", "#words", "#PIs", "#POs"
    );
    for c in &suite {
        let st = NetlistStats::of(&c.netlist);
        println!(
            "{:<6} {:>12} {:>8} {:>7} {:>6} {:>6}   {}",
            st.name,
            st.gates,
            st.ffs,
            c.labels.word_count(),
            st.inputs,
            st.outputs,
            c.profile.target_gates,
        );
    }
    let total_gates: usize = suite.iter().map(|c| c.netlist.gate_count()).sum();
    let total_ffs: usize = suite.iter().map(|c| c.netlist.dff_count()).sum();
    println!("{:<6} {:>12} {:>8}", "total", total_gates, total_ffs);
    println!();
    println!("Paper reference rows (full scale): b03 = 122 gates / 30 FFs / 7 words,");
    println!("b11 = 726 / 31 / 5, b17 = 30777 / 1415 / 98.");
}
