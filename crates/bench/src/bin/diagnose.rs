//! Grouping diagnostics: trains one leave-one-out fold and inspects the
//! score distribution and word-structure of the recovered grouping on the
//! held-out benchmark — the tool for understanding *why* an ARI number
//! came out the way it did (over-merge vs under-merge).
//!
//! ```text
//! cargo run -p rebert-bench --release --bin diagnose -- --bench b15 [--fast]
//! ```

use rebert::ari;
use rebert_bench::{benchmark_suite, train_fold_model, Scale, EXPERIMENT_SEED, R_INDEXES};
use rebert_circuits::corrupt;

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let bench = args
        .iter()
        .position(|a| a == "--bench")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("b03");

    let suite = benchmark_suite(scale);
    let idx = suite
        .iter()
        .position(|c| c.profile.name == bench)
        .unwrap_or_else(|| panic!("unknown benchmark `{bench}` at this scale"));
    let model = train_fold_model(&suite, idx, scale);
    let test = &suite[idx];
    let truth = test.labels.assignment();
    println!(
        "diagnosing {bench}: {} bits, {} true words (widths {:?})",
        truth.len(),
        test.labels.word_count(),
        test.labels.words().iter().map(Vec::len).collect::<Vec<_>>()
    );

    for &r in &R_INDEXES {
        let netlist = if r == 0.0 {
            test.netlist.clone()
        } else {
            corrupt(&test.netlist, r, EXPERIMENT_SEED).0
        };
        let rec = model.recover_words(&netlist);
        let n = rec.assignment.len();
        // Score histogram over scored (non-filtered) pairs.
        let mut hist = [0usize; 10];
        let mut scored = 0usize;
        for i in 0..n {
            for j in i + 1..n {
                let s = rec.score_matrix.get(i, j);
                if s >= 0.0 {
                    hist[(s * 9.999) as usize] += 1;
                    scored += 1;
                }
            }
        }
        let words = rec.words();
        let mut widths: Vec<usize> = words.iter().map(Vec::len).collect();
        widths.sort_unstable_by(|a, b| b.cmp(a));
        println!(
            "r={r:.1}: ARI {:.3} | threshold {:.3} | {} words (top widths {:?}) | {} scored",
            ari(&truth, &rec.assignment),
            rec.score_matrix.threshold(),
            words.len(),
            &widths[..widths.len().min(6)],
            scored,
        );
        let total: usize = hist.iter().sum::<usize>().max(1);
        let bars: Vec<String> = hist
            .iter()
            .map(|&c| format!("{:>4.1}", 100.0 * c as f64 / total as f64))
            .collect();
        println!("       score deciles %: [{}]", bars.join(","));
    }
}
