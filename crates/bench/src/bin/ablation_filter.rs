//! **Ablation A2** — Jaccard pre-filter threshold sweep.
//!
//! The paper filters pairs with token-set Jaccard < 0.7 before inference.
//! This sweep measures, for thresholds {0, 0.5, 0.7, 0.9}, how many pairs
//! reach the model, the recovery runtime, and the resulting ARI — the
//! accuracy/compute trade-off the filter buys.
//!
//! ```text
//! cargo run -p rebert-bench --release --bin ablation_filter [--fast]
//! ```

use std::time::Instant;

use rebert::{ari, train, training_samples, ReBertModel};
use rebert_bench::{benchmark_suite, Scale, EXPERIMENT_SEED};
use rebert_circuits::corrupt;

fn main() {
    let scale = Scale::from_args();
    let suite = benchmark_suite(Scale::Fast);
    let test_idx = 0;
    let train_set: Vec<_> = suite
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != test_idx)
        .map(|(_, c)| c)
        .collect();
    let test = &suite[test_idx];

    let base_cfg = scale.model_config();
    let ds_cfg = scale.dataset_config(&base_cfg);
    let samples = training_samples(&train_set, &ds_cfg, EXPERIMENT_SEED);
    let tcfg = scale.train_config();

    // Train once with the paper threshold; the filter only affects
    // inference, so the same weights serve every sweep point.
    let mut reference = ReBertModel::new(base_cfg.clone(), EXPERIMENT_SEED);
    let report = train(&mut reference, &samples, &tcfg);
    println!(
        "Ablation A2 — Jaccard filter sweep (test = {}, train acc {:.3}, R-Index 0.2)",
        test.profile.name, report.final_accuracy
    );
    let (netlist, _) = corrupt(&test.netlist, 0.2, EXPERIMENT_SEED);
    let truth = test.labels.assignment();

    println!(
        "{:>9} {:>8} {:>9} {:>10} {:>8}",
        "threshold", "scored", "filtered", "time (s)", "ARI"
    );
    for threshold in [0.0, 0.5, 0.7, 0.9] {
        let mut cfg = base_cfg.clone();
        cfg.jaccard_threshold = threshold;
        let mut model = ReBertModel::new(cfg, EXPERIMENT_SEED);
        model.set_store(reference.store().clone());
        let t0 = Instant::now();
        let rec = model.recover_words(&netlist);
        let elapsed = t0.elapsed();
        println!(
            "{:>9.1} {:>8} {:>9} {:>10.3} {:>8.3}",
            threshold,
            rec.stats.pairs_scored,
            rec.stats.pairs_filtered,
            elapsed.as_secs_f64(),
            ari(&truth, &rec.assignment)
        );
    }
    println!("\nPaper setting: 0.7 — near-full accuracy at a fraction of the inference cost.");
}
