//! **Table II** — ARI of structural matching vs ReBERT across R-Index
//! levels, leave-one-out cross-validation.
//!
//! For every benchmark `b`, a model is trained on all other benchmarks
//! (with R-Index augmentation, 1 : 1.2 balancing, per-circuit caps) and
//! evaluated on `b` at R-Index ∈ {0, 0.2, 0.4, 0.6, 0.8, 1}. Prints the
//! paper's table layout — per-R-Index rows for both methods, the average
//! column with ReBERT's improvement %, and the per-benchmark average
//! block — and writes `table2_results.json` next to the binary's CWD.
//!
//! ```text
//! cargo run -p rebert-bench --release --bin table2 [--fast|--full-scale] [--daemon]
//! ```
//!
//! With `--daemon`, each fold's model is hot-loaded into an in-process
//! serving daemon and evaluated through `POST /batch` — the production
//! wire path — instead of in-process calls; the structural baseline
//! always runs locally. Both paths produce identical ReBERT ARI.

use std::collections::BTreeMap;
use std::time::Instant;

use rebert_bench::{
    benchmark_suite, evaluate_cell, evaluate_cells_remote, train_fold_model, DaemonHarness, Scale,
    EXPERIMENT_SEED, R_INDEXES,
};
use rebert_circuits::corrupt;
use rebert_structural::{recover_words, StructuralConfig};

fn main() {
    let scale = Scale::from_args();
    let daemon_mode = std::env::args().any(|a| a == "--daemon");
    let suite = benchmark_suite(scale);
    let names: Vec<String> = suite.iter().map(|c| c.profile.name.clone()).collect();
    println!(
        "Table II — ARI comparison ({scale:?} scale, {} benchmarks, seed {EXPERIMENT_SEED:#x}{})",
        suite.len(),
        if daemon_mode { ", via daemon" } else { "" }
    );
    let wall = Instant::now();
    let harness = daemon_mode.then(|| DaemonHarness::start(0));
    let seed_of = |ri: usize| EXPERIMENT_SEED ^ (ri as u64) << 8;

    // results[r][bench] = (structural, rebert)
    let mut results: Vec<Vec<(f64, f64)>> = vec![Vec::new(); R_INDEXES.len()];
    for (bi, _) in suite.iter().enumerate() {
        eprintln!("=== fold {} / {} ({}) ===", bi + 1, suite.len(), names[bi]);
        let model = train_fold_model(&suite, bi, scale);
        if let Some(harness) = &harness {
            // Every fold hot-swaps the daemon's default model; in a
            // long-lived deployment this is exactly a checkpoint roll.
            harness.install("default", model);
            let remote =
                evaluate_cells_remote(harness.addr(), None, &suite[bi], &R_INDEXES, seed_of)
                    .expect("daemon batch evaluation");
            let k_levels = scale.model_config().k_levels;
            for (ri, (&r, cell)) in R_INDEXES.iter().zip(&remote).enumerate() {
                let netlist = if r == 0.0 {
                    suite[bi].netlist.clone()
                } else {
                    corrupt(&suite[bi].netlist, r, seed_of(ri)).0
                };
                let scfg = StructuralConfig {
                    k_levels,
                    ..Default::default()
                };
                let s_rec = recover_words(&netlist, &scfg);
                let structural_ari = rebert::ari(&suite[bi].labels.assignment(), &s_rec.assignment);
                eprintln!(
                    "  r={r:.1}: structural {structural_ari:.3}, rebert {:.3} ({} bits, {}us on the daemon)",
                    cell.rebert_ari,
                    suite[bi].netlist.dff_count(),
                    cell.rebert_time.as_micros()
                );
                results[ri].push((structural_ari, cell.rebert_ari));
            }
        } else {
            for (ri, &r) in R_INDEXES.iter().enumerate() {
                let cell = evaluate_cell(&model, &suite[bi], r, seed_of(ri));
                eprintln!(
                    "  r={r:.1}: structural {:.3}, rebert {:.3} ({} bits)",
                    cell.structural_ari,
                    cell.rebert_ari,
                    suite[bi].netlist.dff_count()
                );
                results[ri].push((cell.structural_ari, cell.rebert_ari));
            }
        }
    }
    if let Some(harness) = harness {
        harness.shutdown();
    }

    // ---- paper-layout printing ------------------------------------------
    let header: String = names.iter().map(|n| format!("{n:>7}")).collect();
    println!(
        "\n{:<8} {:<11}{header} {:>9}",
        "R-Index", "Method", "Average"
    );
    let mut per_bench_s = vec![0.0f64; names.len()];
    let mut per_bench_r = vec![0.0f64; names.len()];
    for (ri, &r) in R_INDEXES.iter().enumerate() {
        let row = &results[ri];
        let s_avg: f64 = row.iter().map(|c| c.0).sum::<f64>() / row.len() as f64;
        let r_avg: f64 = row.iter().map(|c| c.1).sum::<f64>() / row.len() as f64;
        let s_cells: String = row.iter().map(|c| format!("{:>7.3}", c.0)).collect();
        let r_cells: String = row.iter().map(|c| format!("{:>7.3}", c.1)).collect();
        let improv = if s_avg.abs() > 1e-9 {
            (r_avg - s_avg) / s_avg.abs() * 100.0
        } else {
            0.0
        };
        println!(
            "{:<8} {:<11}{s_cells} {s_avg:>9.3}",
            format!("{r:.1}"),
            "Structural"
        );
        println!(
            "{:<8} {:<11}{r_cells} {r_avg:>9.3} ({improv:+.1}%)",
            "", "ReBERT"
        );
        for (i, c) in row.iter().enumerate() {
            per_bench_s[i] += c.0;
            per_bench_r[i] += c.1;
        }
    }
    let nr = R_INDEXES.len() as f64;
    let s_cells: String = per_bench_s
        .iter()
        .map(|v| format!("{:>7.3}", v / nr))
        .collect();
    let r_cells: String = per_bench_r
        .iter()
        .map(|v| format!("{:>7.3}", v / nr))
        .collect();
    let imp_cells: String = per_bench_s
        .iter()
        .zip(&per_bench_r)
        .map(|(s, r)| {
            let (s, r) = (s / nr, r / nr);
            if s.abs() > 1e-9 {
                format!("{:>7.1}", (r - s) / s.abs() * 100.0)
            } else {
                format!("{:>7}", "-")
            }
        })
        .collect();
    println!("{:<8} {:<11}{s_cells}", "Average", "Structural");
    println!("{:<8} {:<11}{r_cells}", "", "ReBERT");
    println!("{:<8} {:<11}{imp_cells}", "", "Improv.%");
    println!("\ntotal wall-clock: {:.0}s", wall.elapsed().as_secs_f64());

    // ---- machine-readable dump -------------------------------------------
    let mut dump: BTreeMap<String, serde_json::Value> = BTreeMap::new();
    dump.insert("scale".into(), format!("{scale:?}").into());
    dump.insert("seed".into(), EXPERIMENT_SEED.into());
    dump.insert(
        "benchmarks".into(),
        serde_json::to_value(&names).expect("names serialize"),
    );
    dump.insert(
        "r_indexes".into(),
        serde_json::to_value(R_INDEXES).expect("r serialize"),
    );
    let cells: Vec<Vec<(f64, f64)>> = results;
    dump.insert(
        "cells_structural_rebert".into(),
        serde_json::to_value(&cells).expect("cells serialize"),
    );
    std::fs::write(
        "table2_results.json",
        serde_json::to_string_pretty(&dump).expect("dump serialize"),
    )
    .expect("write table2_results.json");
    println!("wrote table2_results.json");
}
