//! **Ablation A3** — back-trace depth sweep.
//!
//! The paper fixes the fan-in back-trace depth at `k = 6`. This sweep
//! retrains and evaluates at k ∈ {2, 4, 6, 8}, reporting sequence length,
//! ARI, and recovery runtime — the context/cost trade-off behind the
//! choice of k.
//!
//! ```text
//! cargo run -p rebert-bench --release --bin sweep_k [--fast]
//! ```

use std::time::Instant;

use rebert::{ari, train, training_samples, ReBertModel};
use rebert_bench::{benchmark_suite, Scale, EXPERIMENT_SEED};
use rebert_circuits::corrupt;

fn main() {
    let scale = Scale::from_args();
    let suite = benchmark_suite(Scale::Fast);
    let test_idx = 0;
    let train_set: Vec<_> = suite
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != test_idx)
        .map(|(_, c)| c)
        .collect();
    let test = &suite[test_idx];
    let truth = test.labels.assignment();
    let (corrupted, _) = corrupt(&test.netlist, 0.4, EXPERIMENT_SEED);

    println!(
        "Ablation A3 — back-trace depth sweep (test = {})",
        test.profile.name
    );
    println!(
        "{:>3} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "k", "samples", "train acc", "ARI r=0", "ARI r=0.4", "time (s)"
    );
    for k in [2usize, 4, 6, 8] {
        let mut cfg = scale.model_config();
        cfg.k_levels = k;
        // Deeper cones mean longer sequences; give the model headroom.
        cfg.max_seq = cfg.max_seq.max(1 << (k + 2));
        let ds_cfg = scale.dataset_config(&cfg);
        let samples = training_samples(&train_set, &ds_cfg, EXPERIMENT_SEED ^ k as u64);
        let mut model = ReBertModel::new(cfg, EXPERIMENT_SEED);
        let report = train(&mut model, &samples, &scale.train_config());
        let t0 = Instant::now();
        let clean = ari(&truth, &model.recover_words(&test.netlist).assignment);
        let noisy = ari(&truth, &model.recover_words(&corrupted).assignment);
        let elapsed = t0.elapsed();
        println!(
            "{:>3} {:>10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            k,
            report.samples,
            report.final_accuracy,
            clean,
            noisy,
            elapsed.as_secs_f64() / 2.0
        );
    }
}
