//! **Ablation A1** — contribution of each embedding scheme.
//!
//! Trains four model variants on the same data — all three embeddings
//! (the paper's configuration), then each scheme disabled in turn — and
//! compares ARI on a held-out benchmark at a mid-range R-Index (0.4),
//! where structural corruption is most damaging.
//!
//! ```text
//! cargo run -p rebert-bench --release --bin ablation_embeddings [--fast]
//! ```

use rebert::{ari, train, training_samples, EmbeddingFlags, ReBertModel};
use rebert_bench::{benchmark_suite, Scale, EXPERIMENT_SEED};
use rebert_circuits::corrupt;

fn main() {
    let scale = Scale::from_args();
    // Ablations always use the Fast suite size (3 benchmarks) but the
    // scale's model; the point is the relative ordering of variants.
    let suite = benchmark_suite(Scale::Fast);
    let test_idx = suite.len() - 1;
    let train_set: Vec<_> = suite
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != test_idx)
        .map(|(_, c)| c)
        .collect();
    let test = &suite[test_idx];

    let base_cfg = scale.model_config();
    let ds_cfg = scale.dataset_config(&base_cfg);
    let samples = training_samples(&train_set, &ds_cfg, EXPERIMENT_SEED);
    let tcfg = scale.train_config();

    let variants: [(&str, EmbeddingFlags); 4] = [
        (
            "word + pos + tree (paper)",
            EmbeddingFlags {
                word: true,
                position: true,
                tree: true,
            },
        ),
        (
            "- word embedding",
            EmbeddingFlags {
                word: false,
                position: true,
                tree: true,
            },
        ),
        (
            "- sequential positional",
            EmbeddingFlags {
                word: true,
                position: false,
                tree: true,
            },
        ),
        (
            "- tree positional",
            EmbeddingFlags {
                word: true,
                position: true,
                tree: false,
            },
        ),
    ];

    println!(
        "Ablation A1 — embedding schemes ({} train samples, test = {}, R-Index 0.4)",
        samples.len(),
        test.profile.name
    );
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "variant", "train acc", "ARI r=0", "ARI r=0.4"
    );
    let truth = test.labels.assignment();
    let (corrupted, _) = corrupt(&test.netlist, 0.4, EXPERIMENT_SEED);
    for (name, flags) in variants {
        let mut cfg = base_cfg.clone();
        cfg.embeddings = flags;
        let mut model = ReBertModel::new(cfg, EXPERIMENT_SEED);
        let report = train(&mut model, &samples, &tcfg);
        let clean = ari(&truth, &model.recover_words(&test.netlist).assignment);
        let noisy = ari(&truth, &model.recover_words(&corrupted).assignment);
        println!(
            "{:<28} {:>10.3} {:>10.3} {:>10.3}",
            name, report.final_accuracy, clean, noisy
        );
    }
}
