//! **Ablation A5** — word-generation strategy.
//!
//! The paper groups bits by connected components over the `max/3`
//! threshold. This ablation regroups the *same* score matrices with
//! average-linkage agglomerative clustering, quantifying how much of the
//! remaining error is the grouping rule rather than the classifier.
//!
//! ```text
//! cargo run -p rebert-bench --release --bin ablation_grouping [--fast]
//! ```

use rebert::{ari, group_bits_adaptive, group_bits_agglomerative};
use rebert_bench::{benchmark_suite, train_fold_model, Scale, EXPERIMENT_SEED};
use rebert_circuits::corrupt;

fn main() {
    let scale = Scale::from_args();
    let suite = benchmark_suite(Scale::Fast);
    println!(
        "Ablation A5 — grouping strategy over identical score matrices ({} benchmarks)",
        suite.len()
    );
    println!(
        "{:<6} {:>7} {:>16} {:>16}",
        "bench", "R", "CC (paper)", "avg-linkage"
    );
    for (bi, test) in suite.iter().enumerate() {
        let model = train_fold_model(&suite, bi, scale);
        let truth = test.labels.assignment();
        for r in [0.0, 0.4] {
            let netlist = if r == 0.0 {
                test.netlist.clone()
            } else {
                corrupt(&test.netlist, r, EXPERIMENT_SEED).0
            };
            let rec = model.recover_words(&netlist);
            let cc = ari(&truth, &group_bits_adaptive(&rec.score_matrix));
            let threshold = rec.score_matrix.threshold();
            let agg = ari(
                &truth,
                &group_bits_agglomerative(&rec.score_matrix, threshold),
            );
            println!(
                "{:<6} {:>7.1} {:>16.3} {:>16.3}",
                test.profile.name, r, cc, agg
            );
        }
    }
}
