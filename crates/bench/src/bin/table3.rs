//! **Table III** — average recovery runtime per benchmark.
//!
//! Times the full recovery pipeline (cone extraction → scoring →
//! grouping) of both methods on every benchmark, averaged over the six
//! R-Index levels, mirroring the paper's runtime comparison. Model
//! weights do not affect runtime, so an untrained model with the
//! experiment configuration is used; training time is reported by
//! `table2` separately (as in the paper, which reports inference-side
//! runtime only).
//!
//! ```text
//! cargo run -p rebert-bench --release --bin table3 [--fast|--full-scale]
//! ```

use std::time::Duration;

use rebert::ReBertModel;
use rebert_bench::{benchmark_suite, evaluate_cell, fmt_secs, Scale, EXPERIMENT_SEED, R_INDEXES};

fn main() {
    let scale = Scale::from_args();
    let suite = benchmark_suite(scale);
    let model = ReBertModel::new(scale.model_config(), EXPERIMENT_SEED);
    println!(
        "Table III — average recovery runtime in seconds ({scale:?} scale, averaged over {} R-Indexes)",
        R_INDEXES.len()
    );
    println!(
        "{:<6} {:>8} {:>12} {:>12} {:>9}",
        "bench", "#FFs", "Structural", "ReBERT", "ratio"
    );
    for (bi, c) in suite.iter().enumerate() {
        let mut s_total = Duration::ZERO;
        let mut r_total = Duration::ZERO;
        for (ri, &r) in R_INDEXES.iter().enumerate() {
            let cell = evaluate_cell(
                &model,
                c,
                r,
                EXPERIMENT_SEED ^ ((bi as u64) << 16) ^ ri as u64,
            );
            s_total += cell.structural_time;
            r_total += cell.rebert_time;
        }
        let n = R_INDEXES.len() as u32;
        let s_avg = s_total / n;
        let r_avg = r_total / n;
        let ratio = r_avg.as_secs_f64() / s_avg.as_secs_f64().max(1e-9);
        println!(
            "{:<6} {:>8} {:>12} {:>12} {:>8.1}x",
            c.profile.name,
            c.netlist.dff_count(),
            fmt_secs(s_avg),
            fmt_secs(r_avg),
            ratio
        );
    }
    println!();
    println!("Paper shape: comparable runtimes on small benchmarks; ReBERT slower on");
    println!("the largest (b18: 120.97s vs 47.52s on the authors' machine).");
}
