//! **Three-way comparison** — ReBERT vs structural matching vs the
//! control-signal method.
//!
//! The paper compares against structural matching \[12\] in Table II and
//! notes (footnote 1) that the control-signal approach \[13\] performed
//! "significantly worse ... in part because it relied on manual
//! identification of control signals". This bin reproduces that side
//! comparison with our automatic-control-detection variant.
//!
//! ```text
//! cargo run -p rebert-bench --release --bin compare_baselines [--fast]
//! ```

use rebert::{ari, train, training_samples, ReBertModel};
use rebert_bench::{benchmark_suite, Scale, EXPERIMENT_SEED, R_INDEXES};
use rebert_circuits::corrupt;
use rebert_structural::{recover_words, recover_words_by_control, ControlConfig, StructuralConfig};

fn main() {
    let scale = Scale::from_args();
    let suite = benchmark_suite(Scale::Fast);
    let test_idx = 0;
    let train_set: Vec<_> = suite
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != test_idx)
        .map(|(_, c)| c)
        .collect();
    let test = &suite[test_idx];
    let truth = test.labels.assignment();

    let mcfg = scale.model_config();
    let dcfg = scale.dataset_config(&mcfg);
    let samples = training_samples(&train_set, &dcfg, EXPERIMENT_SEED);
    let mut model = ReBertModel::new(mcfg.clone(), EXPERIMENT_SEED);
    let report = train(&mut model, &samples, &scale.train_config());
    println!(
        "Three-way comparison on {} ({} bits, train acc {:.3})",
        test.profile.name,
        truth.len(),
        report.final_accuracy
    );

    let scfg = StructuralConfig {
        k_levels: mcfg.k_levels,
        ..Default::default()
    };
    let ccfg = ControlConfig {
        k_levels: mcfg.k_levels,
        ..Default::default()
    };
    println!(
        "{:>8} {:>12} {:>14} {:>10}",
        "R-Index", "Structural", "ControlSignal", "ReBERT"
    );
    for (ri, &r) in R_INDEXES.iter().enumerate() {
        let netlist = if r == 0.0 {
            test.netlist.clone()
        } else {
            corrupt(&test.netlist, r, EXPERIMENT_SEED ^ ri as u64).0
        };
        let s = ari(&truth, &recover_words(&netlist, &scfg).assignment);
        let c = ari(
            &truth,
            &recover_words_by_control(&netlist, &ccfg).assignment,
        );
        let b = ari(&truth, &model.recover_words(&netlist).assignment);
        println!("{r:>8.1} {s:>12.3} {c:>14.3} {b:>10.3}");
    }
    println!("\nPaper footnote 1: the control-signal method trails structural matching,");
    println!("largely because CAD-inserted control signals dilute the signatures.");
}
