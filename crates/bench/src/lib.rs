//! # rebert-bench
//!
//! The experiment harness that regenerates the ReBERT paper's tables:
//!
//! * **Table I** — benchmark statistics (`table1` binary);
//! * **Table II** — ARI of structural matching vs ReBERT across R-Index
//!   levels under leave-one-out cross-validation (`table2` binary);
//! * **Table III** — average recovery runtime per benchmark (`table3`
//!   binary);
//! * ablations — embedding schemes (`ablation_embeddings`), Jaccard filter
//!   threshold (`ablation_filter`), back-trace depth (`sweep_k`).
//!
//! All binaries accept `--fast` (subset of benchmarks / lighter training)
//! and `--full-scale` (full-size b14–b18 profiles); defaults are sized for
//! a single CPU core. Criterion micro-benchmarks live under `benches/`.

use std::time::{Duration, Instant};

use rebert_obs as obs;

pub mod remote;
pub use remote::{evaluate_cells_remote, DaemonHarness, RemoteCell};

use rebert::{
    ari, loo_split, train, training_samples, DatasetConfig, ReBertConfig, ReBertModel, TrainConfig,
};
use rebert_circuits::{corrupt, itc99_profiles, itc99_profiles_scaled, GeneratedCircuit};
use rebert_circuits::{generate, Profile};
use rebert_netlist::{GateType, Netlist};
use rebert_structural::{recover_words, StructuralConfig};

/// The corruption levels evaluated by the paper's Table II.
pub const R_INDEXES: [f64; 6] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

/// Master seed used by the published tables (printed with each run).
pub const EXPERIMENT_SEED: u64 = 0xDA7E_2025;

/// Sizing of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A handful of small benchmarks, light training — smoke-test sizing.
    Fast,
    /// All 12 benchmarks with the large ones scaled down (default).
    Scaled,
    /// Full-size Table I profiles (hours of CPU time).
    Full,
}

impl Scale {
    /// Parses `--fast` / `--full-scale` style CLI flags; unknown flags are
    /// ignored so binaries can layer their own.
    ///
    /// Also installs the process-wide stderr logger (once): the library
    /// reports fold progress through `rebert-obs` rather than printing,
    /// so the experiment binaries opt back into the old stderr
    /// visibility here. `REBERT_LOG` overrides the level (default
    /// `info`); library consumers that never call this stay silent.
    pub fn from_args() -> Scale {
        use std::sync::{Arc, OnceLock};
        static LOGGER: OnceLock<obs::SinkId> = OnceLock::new();
        LOGGER.get_or_init(|| obs::install(Arc::new(obs::StderrSink::from_env(obs::Level::Info))));
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--fast") {
            Scale::Fast
        } else if args.iter().any(|a| a == "--full-scale") {
            Scale::Full
        } else {
            Scale::Scaled
        }
    }

    /// The benchmark profiles for this scale.
    pub fn profiles(self) -> Vec<Profile> {
        match self {
            Scale::Fast => itc99_profiles_scaled()
                .into_iter()
                .filter(|p| ["b03", "b08", "b13"].contains(&p.name.as_str()))
                .collect(),
            Scale::Scaled => itc99_profiles_scaled(),
            Scale::Full => itc99_profiles(),
        }
    }

    /// The model configuration for this scale.
    pub fn model_config(self) -> ReBertConfig {
        match self {
            Scale::Fast => {
                let mut cfg = ReBertConfig::small();
                cfg.k_levels = 4;
                cfg
            }
            Scale::Scaled => {
                let mut cfg = ReBertConfig::small();
                cfg.k_levels = 5;
                cfg.max_seq = 160;
                cfg
            }
            Scale::Full => ReBertConfig::paper(),
        }
    }

    /// The training configuration for this scale.
    pub fn train_config(self) -> TrainConfig {
        match self {
            Scale::Fast => TrainConfig {
                epochs: 8,
                lr: 1e-3,
                batch_size: 16,
                seed: EXPERIMENT_SEED,
                weight_decay: 0.01,
                warmup_frac: 0.1,
            },
            Scale::Scaled => TrainConfig {
                epochs: 6,
                lr: 1e-3,
                batch_size: 16,
                seed: EXPERIMENT_SEED,
                weight_decay: 0.01,
                warmup_frac: 0.1,
            },
            Scale::Full => TrainConfig {
                epochs: 6,
                lr: 5e-4,
                batch_size: 32,
                seed: EXPERIMENT_SEED,
                weight_decay: 0.01,
                warmup_frac: 0.1,
            },
        }
    }

    /// The dataset configuration for this scale (paper balancing rules,
    /// with lighter augmentation/caps below full scale).
    pub fn dataset_config(self, model: &ReBertConfig) -> DatasetConfig {
        let mut cfg = DatasetConfig::for_model(model);
        match self {
            Scale::Fast => {
                cfg.r_indexes = vec![0.0, 0.4, 0.8];
                cfg.max_per_circuit = 500;
            }
            Scale::Scaled => {
                cfg.r_indexes = vec![0.0, 0.4, 0.8];
                cfg.max_per_circuit = 500;
            }
            Scale::Full => { /* paper values from Default */ }
        }
        cfg
    }
}

/// Generates the benchmark suite for a scale, deterministically.
pub fn benchmark_suite(scale: Scale) -> Vec<GeneratedCircuit> {
    scale
        .profiles()
        .iter()
        .map(|p| generate(p, EXPERIMENT_SEED ^ hash_name(&p.name)))
        .collect()
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

/// Result of evaluating both methods on one benchmark at one R-Index.
#[derive(Debug, Clone, Copy)]
pub struct CellResult {
    /// ARI of the structural baseline.
    pub structural_ari: f64,
    /// ARI of ReBERT.
    pub rebert_ari: f64,
    /// Structural recovery wall-clock.
    pub structural_time: Duration,
    /// ReBERT recovery wall-clock.
    pub rebert_time: Duration,
}

/// Evaluates a trained model and the structural baseline on one circuit
/// at one corruption level.
pub fn evaluate_cell(
    model: &ReBertModel,
    circuit: &GeneratedCircuit,
    r_index: f64,
    corruption_seed: u64,
) -> CellResult {
    let netlist = if r_index == 0.0 {
        circuit.netlist.clone()
    } else {
        corrupt(&circuit.netlist, r_index, corruption_seed).0
    };
    let truth = circuit.labels.assignment();

    let scfg = StructuralConfig {
        k_levels: model.config().k_levels,
        ..Default::default()
    };
    let t0 = Instant::now();
    let s_rec = recover_words(&netlist, &scfg);
    let structural_time = t0.elapsed();

    let t1 = Instant::now();
    let r_rec = model.recover_words(&netlist);
    let rebert_time = t1.elapsed();

    CellResult {
        structural_ari: ari(&truth, &s_rec.assignment),
        rebert_ari: ari(&truth, &r_rec.assignment),
        structural_time,
        rebert_time,
    }
}

/// Trains the leave-one-out model for fold `test_idx` and returns it.
pub fn train_fold_model(
    circuits: &[GeneratedCircuit],
    test_idx: usize,
    scale: Scale,
) -> ReBertModel {
    let model_cfg = scale.model_config();
    let (train_set, _) = loo_split(circuits, test_idx);
    let ds_cfg = scale.dataset_config(&model_cfg);
    let samples = training_samples(&train_set, &ds_cfg, EXPERIMENT_SEED ^ test_idx as u64);
    let mut model = ReBertModel::new(model_cfg, EXPERIMENT_SEED);
    let report = train(&mut model, &samples, &scale.train_config());
    obs::info!(
        "bench",
        "fold {test_idx}: {} samples, losses {:?}, train acc {:.3}",
        report.samples,
        report.epoch_losses,
        report.final_accuracy
    );
    model
}

/// Formats a duration as seconds with millisecond resolution.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Builds a synthetic netlist with **controlled cone duplication** for the
/// quadratic-phase benchmarks: `n_bits` flip-flops whose fan-in cones fall
/// into `⌈n_bits / duplication⌉` distinct shape classes, each class
/// replicated `duplication` times (like the replicated datapath slices of
/// ITC'99-style designs). Cone shapes are drawn injectively from the gate
/// alphabet so distinct classes never collide, and every bit of one class
/// tokenizes to a bit-identical `(tokens, codes)` cone.
///
/// Deterministic; the result passes `Netlist::validate`.
///
/// # Panics
///
/// Panics if `n_bits` or `duplication` is zero.
pub fn duplicated_netlist(name: &str, n_bits: usize, duplication: usize) -> Netlist {
    assert!(n_bits >= 1 && duplication >= 1, "empty duplication profile");
    const BIN: [GateType; 6] = [
        GateType::And,
        GateType::Or,
        GateType::Xor,
        GateType::Nand,
        GateType::Nor,
        GateType::Xnor,
    ];
    let mut nl = Netlist::new(name);
    let pis: Vec<_> = (0..8).map(|i| nl.add_input(format!("pi{i}"))).collect();
    let n_classes = n_bits.div_ceil(duplication);
    for bit in 0..n_bits {
        let class = bit / duplication;
        // Injective class → shape mapping: three gate choices plus an
        // optional NOT wrapper (6 × 6 × 6 × 2 = 432 distinct shapes).
        assert!(
            class < 432,
            "duplication profile exceeds the shape alphabet"
        );
        let (g0, g1, g2) = (BIN[class % 6], BIN[(class / 6) % 6], BIN[(class / 36) % 6]);
        let wrap_not = (class / 216) % 2 == 1;
        let leaf = |i: usize| pis[(bit + i) % pis.len()];
        let l = nl
            .add_gate_new_net(g1, vec![leaf(0), leaf(1)], format!("b{bit}_l"))
            .expect("fresh net");
        let r = nl
            .add_gate_new_net(g2, vec![leaf(2), leaf(3)], format!("b{bit}_r"))
            .expect("fresh net");
        let mut d = nl
            .add_gate_new_net(g0, vec![l, r], format!("b{bit}_d"))
            .expect("fresh net");
        if wrap_not {
            d = nl
                .add_gate_new_net(GateType::Not, vec![d], format!("b{bit}_n"))
                .expect("fresh net");
        }
        let q = nl.add_net(format!("b{bit}_q"));
        nl.add_dff(d, q).expect("fresh flip-flop");
        nl.add_output(q);
    }
    debug_assert!(n_classes <= 432);
    nl
}

/// A lightly edited variant of `nl` for resubmit benchmarks: roughly
/// `frac` of the gates undergo equivalence-preserving replacement
/// (R-Index corruption), modelling an incremental design revision
/// between two submissions to a warm daemon. Deterministic in `seed`.
/// Returns the variant and how many gates actually changed.
pub fn edited_variant(nl: &Netlist, frac: f64, seed: u64) -> (Netlist, usize) {
    let (edited, stats) = rebert_circuits::corrupt(nl, frac, seed);
    (edited, stats.replaced)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edited_variant_is_a_small_deterministic_delta() {
        let nl = duplicated_netlist("edit", 24, 4);
        let (a, changed_a) = edited_variant(&nl, 0.05, 9);
        let (b, changed_b) = edited_variant(&nl, 0.05, 9);
        assert_eq!(changed_a, changed_b, "same seed, same edit");
        assert_eq!(
            rebert_netlist::write_bench(&a),
            rebert_netlist::write_bench(&b)
        );
        assert!(changed_a < nl.gate_count() / 2, "the edit is light");
        assert_eq!(a.dff_count(), nl.dff_count(), "bits are preserved");
    }

    #[test]
    fn scales_produce_consistent_configs() {
        for scale in [Scale::Fast, Scale::Scaled, Scale::Full] {
            let profiles = scale.profiles();
            assert!(!profiles.is_empty());
            let mcfg = scale.model_config();
            let dcfg = scale.dataset_config(&mcfg);
            assert_eq!(dcfg.k_levels, mcfg.k_levels);
            assert_eq!(dcfg.code_width, mcfg.code_width);
        }
        assert_eq!(Scale::Scaled.profiles().len(), 12);
    }

    #[test]
    fn suite_generation_is_deterministic() {
        let a = benchmark_suite(Scale::Fast);
        let b = benchmark_suite(Scale::Fast);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.netlist.gate_count(), y.netlist.gate_count());
            assert_eq!(x.labels, y.labels);
        }
    }

    #[test]
    fn duplicated_netlist_has_controlled_classes() {
        use rebert::{bit_sequences, ConeClasses};
        let nl = duplicated_netlist("dup", 64, 8);
        assert!(nl.validate().is_ok());
        assert_eq!(nl.dff_count(), 64);
        let seqs = bit_sequences(&nl, 4, 8);
        let classes = ConeClasses::build(&seqs);
        assert_eq!(classes.len(), 8, "64 bits / 8x duplication");
        for c in 0..classes.len() as u32 {
            assert_eq!(classes.members(c).len(), 8);
        }
        assert!((classes.duplication_rate() - 8.0).abs() < 1e-9);
        // No duplication: every bit its own class.
        let unique = duplicated_netlist("uniq", 12, 1);
        let useqs = bit_sequences(&unique, 4, 8);
        assert_eq!(ConeClasses::build(&useqs).len(), 12);
    }

    #[test]
    fn duplicated_netlist_dedup_recovery_matches_reference() {
        let nl = duplicated_netlist("dup_eq", 24, 4);
        let model = ReBertModel::new(ReBertConfig::tiny(), 0);
        let dedup = model.recover_words_with(&nl, 0);
        let reference = model.recover_words_reference(&nl, 0);
        assert_eq!(dedup.assignment, reference.assignment);
        assert!(dedup.stats.pairs_memoized > 0, "duplication must memoize");
        assert!(dedup.stats.class_pairs_scored < reference.stats.pairs_scored);
    }

    #[test]
    fn evaluate_cell_runs_end_to_end() {
        let suite = benchmark_suite(Scale::Fast);
        let model = ReBertModel::new(Scale::Fast.model_config(), 1);
        let cell = evaluate_cell(&model, &suite[0], 0.4, 9);
        assert!((-1.0..=1.0).contains(&cell.structural_ari));
        assert!((-1.0..=1.0).contains(&cell.rebert_ari));
        assert!(cell.rebert_time > Duration::ZERO);
    }
}
