//! A hand-rolled `ArcSwap`: one atomic pointer to an `Arc`'d payload,
//! lock-free on the read path, with a swap-then-drain writer.
//!
//! The protocol is a two-counter epoch scheme on `SeqCst` atomics:
//!
//! * **Readers** bump `readers`, load the raw pointer, bump the `Arc`'s
//!   strong count, then drop their `readers` claim. From that point they
//!   hold an ordinary `Arc<T>` and the pointer cell is out of the
//!   picture.
//! * **Writers** swap the pointer first, then spin until `readers`
//!   reaches zero before reclaiming their reference to the old value.
//!
//! Why this is sound (all operations are `SeqCst`, so they form one
//! total order): when the writer observes `readers == 0` *after* its
//! swap, every reader either (a) finished — its strong-count bump
//! already happened, so the value cannot drop to zero under it — or
//! (b) has not yet done its `readers` increment, in which case its later
//! pointer load is ordered after the swap and sees the *new* value.
//! There is no interleaving in which a reader holds the old raw pointer
//! without a strong count while the writer reclaims it. The reader-side
//! critical section is three atomic operations, so the writer's spin is
//! bounded by nanoseconds in practice.
//!
//! `crates/rebert/src/cache.rs` sets the precedent for this style of
//! dependency-free concurrency plus a loom restatement; the loom model
//! for this protocol lives at the bottom of the file.
//!
//! This module is deliberately atomics-only: it takes no blocking lock,
//! so it has no site on `rebert_sync`'s lock-order graph — its safety
//! argument is the epoch protocol above plus the loom model, not lock
//! ordering.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// An atomically swappable `Arc<T>` (epoch-pointer style).
///
/// [`EpochArc::load`] is lock-free and never blocks on writers;
/// [`EpochArc::swap`] publishes a new value immediately and then waits
/// (spinning) for in-flight loads to vacate the pointer cell before
/// handing back the previous `Arc`. Clones obtained from `load` are
/// plain `Arc`s — they keep the old value alive arbitrarily long
/// without delaying the swap itself.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use rebert_registry::EpochArc;
///
/// let cell = EpochArc::new(Arc::new(1u32));
/// let before = cell.load();
/// let old = cell.swap(Arc::new(2));
/// assert_eq!((*before, *old, *cell.load()), (1, 1, 2));
/// ```
#[derive(Debug)]
pub struct EpochArc<T> {
    /// Raw pointer from `Arc::into_raw`; the cell owns one strong count
    /// on whatever it points at.
    ptr: AtomicPtr<T>,
    /// Loads in their three-instruction critical section right now.
    readers: AtomicUsize,
}

// The cell hands out `Arc<T>` across threads, so it needs the same
// bounds `Arc` itself needs to be `Send + Sync`.
unsafe impl<T: Send + Sync> Send for EpochArc<T> {}
unsafe impl<T: Send + Sync> Sync for EpochArc<T> {}

impl<T> EpochArc<T> {
    /// Wraps `value` as the initial resident.
    pub fn new(value: Arc<T>) -> Self {
        EpochArc {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            readers: AtomicUsize::new(0),
        }
    }

    /// A clone of the current value. Lock-free; never blocks on
    /// concurrent [`EpochArc::swap`]s.
    pub fn load(&self) -> Arc<T> {
        self.readers.fetch_add(1, Ordering::SeqCst);
        let raw = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `raw` came from `Arc::into_raw` and the value is alive:
        // a concurrent swapper cannot reclaim it before observing our
        // `readers` claim drop below, and by then the strong count is
        // bumped (see the module-level soundness argument).
        unsafe { Arc::increment_strong_count(raw) };
        self.readers.fetch_sub(1, Ordering::SeqCst);
        // SAFETY: we own the strong count incremented above.
        unsafe { Arc::from_raw(raw) }
    }

    /// Publishes `next` and returns the previous value. New loads see
    /// `next` immediately; the returned `Arc` is the *only* handle the
    /// cell gives up — clones held by earlier loads stay valid.
    pub fn swap(&self, next: Arc<T>) -> Arc<T> {
        let old = self
            .ptr
            .swap(Arc::into_raw(next).cast_mut(), Ordering::SeqCst);
        // Drain: wait for loads that may have read `old` but not yet
        // secured a strong count. The window is three atomic ops wide.
        let mut spins = 0u32;
        while self.readers.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // SAFETY: reclaiming the strong count the cell held on `old`.
        unsafe { Arc::from_raw(old) }
    }
}

impl<T> Drop for EpochArc<T> {
    fn drop(&mut self) {
        let raw = *self.ptr.get_mut();
        // SAFETY: the cell still owns one strong count on `raw`.
        unsafe { drop(Arc::from_raw(raw)) };
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn load_and_swap_round_trip() {
        let cell = EpochArc::new(Arc::new("v1".to_owned()));
        assert_eq!(*cell.load(), "v1");
        let old = cell.swap(Arc::new("v2".to_owned()));
        assert_eq!(*old, "v1");
        assert_eq!(*cell.load(), "v2");
    }

    #[test]
    fn old_clones_survive_a_swap() {
        let cell = EpochArc::new(Arc::new(vec![1, 2, 3]));
        let pinned = cell.load();
        let old = cell.swap(Arc::new(vec![4]));
        drop(old);
        assert_eq!(*pinned, vec![1, 2, 3], "in-flight handle outlives swap");
        assert_eq!(*cell.load(), vec![4]);
    }

    #[test]
    fn refcount_drains_to_the_last_handle() {
        let cell = EpochArc::new(Arc::new(7u64));
        let a = cell.load();
        let b = cell.load();
        let old = cell.swap(Arc::new(8));
        assert_eq!(Arc::strong_count(&old), 3, "cell gave up its count");
        drop(a);
        drop(b);
        assert_eq!(Arc::strong_count(&old), 1, "retired value is drained");
    }

    #[test]
    fn drop_releases_the_resident_value() {
        struct Probe<'a>(&'a AtomicU64);
        impl Drop for Probe<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = AtomicU64::new(0);
        {
            let cell = EpochArc::new(Arc::new(Probe(&drops)));
            let old = cell.swap(Arc::new(Probe(&drops)));
            drop(old);
            assert_eq!(drops.load(Ordering::SeqCst), 1, "only the retired one");
        }
        assert_eq!(drops.load(Ordering::SeqCst), 2, "cell drop frees current");
    }

    #[test]
    fn concurrent_loads_and_swaps_stress() {
        // Not a proof (the loom model below is); a smoke test that the
        // real-atomics build survives sustained load/swap contention
        // without leaking or double-freeing under sanitizer-less CI.
        let cell = Arc::new(EpochArc::new(Arc::new(0usize)));
        let stop = Arc::new(AtomicUsize::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    // Load before checking `stop` so every reader
                    // observes at least one published value even if
                    // the writer finishes before this thread runs.
                    let mut seen = 0usize;
                    loop {
                        let v = cell.load();
                        assert!(*v <= 1024, "value is always a published one");
                        seen += 1;
                        if stop.load(Ordering::SeqCst) != 0 {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();
        for i in 1..=1024usize {
            let old = cell.swap(Arc::new(i));
            assert!(*old < i);
        }
        stop.store(1, Ordering::SeqCst);
        for r in readers {
            assert!(r.join().expect("reader thread") > 0);
        }
        assert_eq!(*cell.load(), 1024);
    }
}

// A loom restatement of the swap protocol (run via the CI analysis job:
// `RUSTFLAGS="--cfg loom" cargo test -p rebert-registry --lib loom`).
// `Arc::increment_strong_count` has no loom twin, so the model states
// the same three-step reader / swap-then-drain writer discipline on
// explicit counters: `current` is the epoch pointer, `rc[v]` the strong
// count of version `v`, `freed[v]` whether `v` was reclaimed. The
// assertion is the soundness claim from the module docs: a reader never
// secures a reference to a version that was already reclaimed, and the
// retired version is reclaimed (flushed) exactly once, only after its
// count drains.
#[cfg(all(test, loom))]
mod loom_model {
    use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use loom::sync::Arc;
    use loom::thread;

    struct Model {
        /// Epoch pointer: which version index is current.
        current: AtomicUsize,
        /// Readers inside the load critical section.
        readers: AtomicUsize,
        /// Strong counts per version (v0 starts owned by the cell).
        rc: [AtomicUsize; 2],
        /// Reclamation flags per version (the "cache flushed, memory
        /// dropped" retire step).
        freed: [AtomicBool; 2],
    }

    impl Model {
        fn new() -> Self {
            Model {
                current: AtomicUsize::new(0),
                readers: AtomicUsize::new(0),
                rc: [AtomicUsize::new(1), AtomicUsize::new(0)],
                freed: [AtomicBool::new(false), AtomicBool::new(false)],
            }
        }

        /// Reader side of `EpochArc::load` + eventual handle drop.
        fn load_use_release(&self) {
            self.readers.fetch_add(1, Ordering::SeqCst);
            let v = self.current.load(Ordering::SeqCst);
            let prev = self.rc[v].fetch_add(1, Ordering::SeqCst);
            assert!(prev >= 1, "reader bumped a drained refcount (UAF)");
            assert!(
                !self.freed[v].load(Ordering::SeqCst),
                "reader secured a reclaimed version"
            );
            self.readers.fetch_sub(1, Ordering::SeqCst);
            // ... in-flight try_recover runs on version `v` here ...
            assert!(
                !self.freed[v].load(Ordering::SeqCst),
                "version reclaimed while a request was in flight"
            );
            // Handle drop: last one out reclaims a retired version.
            if self.rc[v].fetch_sub(1, Ordering::SeqCst) == 1 {
                let was = self.freed[v].swap(true, Ordering::SeqCst);
                assert!(!was, "double retire");
            }
        }

        /// Writer side of load-publish-retire (`install` → `swap`).
        fn publish_retire(&self) {
            self.rc[1].store(1, Ordering::SeqCst); // new version, cell-owned
            let old = self.current.swap(1, Ordering::SeqCst);
            while self.readers.load(Ordering::SeqCst) != 0 {
                thread::yield_now();
            }
            // Drop the cell's count on the old version; reclaim on drain.
            if self.rc[old].fetch_sub(1, Ordering::SeqCst) == 1 {
                let was = self.freed[old].swap(true, Ordering::SeqCst);
                assert!(!was, "double retire");
            }
        }
    }

    #[test]
    fn loom_load_publish_retire_never_frees_under_a_reader() {
        loom::model(|| {
            let m = Arc::new(Model::new());
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || m.load_use_release())
                })
                .collect();
            let writer = {
                let m = Arc::clone(&m);
                thread::spawn(move || m.publish_retire())
            };
            for r in readers {
                r.join().unwrap();
            }
            writer.join().unwrap();
            // Quiescence: v0 retired exactly once, v1 still resident.
            assert!(m.freed[0].load(Ordering::SeqCst), "old version retired");
            assert!(!m.freed[1].load(Ordering::SeqCst));
            assert_eq!(m.rc[1].load(Ordering::SeqCst), 1, "cell still owns v1");
        });
    }
}
