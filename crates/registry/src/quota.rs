//! Per-tenant token-bucket rate limiting for the serving layer.
//!
//! Each tenant (the `X-Rebert-Tenant` header; anonymous traffic shares
//! one bucket) gets a bucket of `burst` tokens refilled at `rate`
//! tokens per second. A request costs one token; an empty bucket means
//! `429` with a `Retry-After` derived from the exact deficit. The state
//! is one short-mutex map — recovery work dwarfs the lock by orders of
//! magnitude.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use rebert_sync::Mutex;

/// Most tenants tracked at once; beyond this the stalest bucket is
/// recycled (an idle bucket is full, so its owner loses nothing).
const MAX_TENANTS: usize = 1024;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Token buckets keyed by tenant id.
///
/// # Examples
///
/// ```
/// use rebert_registry::TenantQuotas;
///
/// let q = TenantQuotas::new(1.0); // 1 request/second, burst 1
/// assert!(q.try_acquire("acme").is_ok());
/// let wait = q.try_acquire("acme").unwrap_err();
/// assert!(wait.as_secs_f64() > 0.0, "second request must wait");
/// assert!(q.try_acquire("globex").is_ok(), "tenants are independent");
/// ```
#[derive(Debug)]
pub struct TenantQuotas {
    /// Refill rate, tokens per second. Always > 0.
    rate: f64,
    /// Bucket capacity (burst size). Always ≥ 1.
    burst: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantQuotas {
    /// A quota of `rate` requests per second per tenant, with a burst
    /// capacity of `max(rate, 1)` (so a quota below 1/s still admits a
    /// single request immediately). Non-positive/NaN rates are clamped
    /// to a minimal positive rate rather than panicking.
    pub fn new(rate: f64) -> Self {
        let rate = if rate.is_finite() && rate > 0.0 {
            rate
        } else {
            f64::MIN_POSITIVE.max(1e-9)
        };
        Self::with_burst(rate, rate.max(1.0))
    }

    /// A quota with an explicit burst capacity (clamped to ≥ 1).
    pub fn with_burst(rate: f64, burst: f64) -> Self {
        TenantQuotas {
            rate: if rate.is_finite() && rate > 0.0 {
                rate
            } else {
                1e-9
            },
            burst: if burst.is_finite() {
                burst.max(1.0)
            } else {
                1.0
            },
            buckets: Mutex::new(HashMap::new(), "registry.quota.buckets"),
        }
    }

    /// The refill rate (tokens per second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The bucket capacity.
    pub fn burst(&self) -> f64 {
        self.burst
    }

    /// Takes one token from `tenant`'s bucket.
    ///
    /// # Errors
    ///
    /// The duration until a token will be available, for `Retry-After`.
    pub fn try_acquire(&self, tenant: &str) -> Result<(), Duration> {
        self.try_acquire_at(tenant, Instant::now())
    }

    /// [`TenantQuotas::try_acquire`] with an injected clock, so tests
    /// exercise refill deterministically.
    ///
    /// # Errors
    ///
    /// The duration until a token will be available, for `Retry-After`.
    pub fn try_acquire_at(&self, tenant: &str, now: Instant) -> Result<(), Duration> {
        let mut buckets = self.buckets.lock();
        if buckets.len() >= MAX_TENANTS && !buckets.contains_key(tenant) {
            // Recycle the stalest bucket; by construction it is the
            // closest to full.
            if let Some(stalest) = buckets
                .iter()
                .min_by_key(|(_, b)| b.last)
                .map(|(k, _)| k.clone())
            {
                buckets.remove(&stalest);
            }
        }
        let bucket = buckets.entry(tenant.to_owned()).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            Err(Duration::from_secs_f64(deficit / self.rate))
        }
    }

    /// Tenants with live buckets right now.
    pub fn tracked_tenants(&self) -> usize {
        self.buckets.lock().len()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle_then_refill() {
        let q = TenantQuotas::with_burst(2.0, 2.0);
        let t0 = Instant::now();
        assert!(q.try_acquire_at("a", t0).is_ok());
        assert!(q.try_acquire_at("a", t0).is_ok(), "burst of 2");
        let wait = q.try_acquire_at("a", t0).unwrap_err();
        assert!(
            (wait.as_secs_f64() - 0.5).abs() < 1e-9,
            "one token deficit at 2/s is 0.5s, got {wait:?}"
        );
        // After the advertised wait the token is there.
        assert!(q.try_acquire_at("a", t0 + wait).is_ok());
        // Refill caps at burst: a long idle spell does not bank tokens.
        let later = t0 + Duration::from_secs(3600);
        assert!(q.try_acquire_at("a", later).is_ok());
        assert!(q.try_acquire_at("a", later).is_ok());
        assert!(q.try_acquire_at("a", later).is_err(), "capped at burst 2");
    }

    #[test]
    fn tenants_do_not_share_buckets() {
        let q = TenantQuotas::new(1.0);
        let t0 = Instant::now();
        assert!(q.try_acquire_at("a", t0).is_ok());
        assert!(q.try_acquire_at("a", t0).is_err());
        assert!(q.try_acquire_at("b", t0).is_ok(), "b has its own bucket");
        assert_eq!(q.tracked_tenants(), 2);
    }

    #[test]
    fn sub_unit_rates_still_admit_one_request() {
        let q = TenantQuotas::new(0.5); // one request per 2 seconds
        let t0 = Instant::now();
        assert!(q.try_acquire_at("a", t0).is_ok(), "burst floor of 1");
        let wait = q.try_acquire_at("a", t0).unwrap_err();
        assert!((wait.as_secs_f64() - 2.0).abs() < 1e-9, "got {wait:?}");
    }

    #[test]
    fn degenerate_rates_are_clamped_not_panicking() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let q = TenantQuotas::new(bad);
            let t0 = Instant::now();
            // First request passes on the burst floor; the second is
            // throttled (effectively forever for a zero rate).
            assert!(q.try_acquire_at("a", t0).is_ok(), "rate {bad}");
        }
    }

    #[test]
    fn time_going_backwards_is_harmless() {
        let q = TenantQuotas::with_burst(1.0, 1.0);
        let t0 = Instant::now();
        let later = t0 + Duration::from_secs(5);
        assert!(q.try_acquire_at("a", later).is_ok());
        // An earlier timestamp must not panic or mint tokens.
        assert!(q.try_acquire_at("a", t0).is_err());
    }

    #[test]
    fn tenant_map_is_bounded() {
        let q = TenantQuotas::new(1000.0);
        let t0 = Instant::now();
        for i in 0..(MAX_TENANTS + 10) {
            let _ = q.try_acquire_at(&format!("tenant-{i}"), t0);
        }
        assert!(q.tracked_tenants() <= MAX_TENANTS);
    }
}
