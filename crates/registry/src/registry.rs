//! The registry proper: named slots of versioned resident models, each
//! an [`EpochArc`] so `install` is an atomic hot swap, plus the retired
//! list that flushes a version's score cache once its refcount drains.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rebert_sync::Mutex;

use rebert::{
    Backend, CancelToken, Cancelled, ReBertModel, RecoveredWords, RecoverySession, ScoreCache,
};
use rebert_netlist::Netlist;
use rebert_obs as obs;

use crate::swap::EpochArc;

/// The model name requests fall back to when they send no
/// `X-Rebert-Model` header and the registry has no explicit default.
pub const DEFAULT_MODEL: &str = "default";

/// Knobs shared by every resident the registry creates.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Scoring threads per resident session (`0` = all cores).
    pub threads: usize,
    /// Byte budget for each resident's score cache (`0` disables
    /// caching for residents installed without an explicit cache).
    pub cache_bytes: usize,
    /// Directory for per-model `score-cache-<fingerprint>.bin` files.
    /// `None` keeps caches purely in-memory.
    pub cache_dir: Option<PathBuf>,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            threads: 0,
            cache_bytes: 64 << 20,
            cache_dir: None,
        }
    }
}

/// One immutable resident version: the model (inside its warm
/// [`RecoverySession`]), its checkpoint fingerprint, its own score
/// cache, and per-backend serving counters. Never mutated after
/// publication — an update is a whole new `ResidentModel` swapped in.
#[derive(Debug)]
pub struct ResidentModel {
    name: String,
    version: u64,
    fingerprint_hex: String,
    session: RecoverySession,
    cache_path: Option<PathBuf>,
    /// Completed recoveries served by this resident, per backend
    /// (indexed like [`Backend::ALL`]).
    served: [AtomicU64; Backend::ALL.len()],
}

impl ResidentModel {
    /// The registry name this version serves under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotone per-name version number (1 for the first install).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Hex fingerprint of the resident checkpoint.
    pub fn fingerprint_hex(&self) -> &str {
        &self.fingerprint_hex
    }

    /// The warm session (model + scratches + cache).
    pub fn session(&self) -> &RecoverySession {
        &self.session
    }

    /// This version's score cache, if caching is enabled.
    pub fn cache(&self) -> Option<&Arc<ScoreCache>> {
        self.session.cache()
    }

    /// Where this version's cache persists, if anywhere.
    pub fn cache_path(&self) -> Option<&PathBuf> {
        self.cache_path.as_ref()
    }

    /// Runs one recovery on this version. Mirrors
    /// [`RecoverySession::try_recover_opts`] and bumps the per-backend
    /// serving counters on success.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when `cancel` trips before completion.
    pub fn try_recover_opts(
        &self,
        nl: &Netlist,
        cancel: &CancelToken,
        backend: Backend,
        use_cache: bool,
    ) -> Result<RecoveredWords, Cancelled> {
        let rec = self
            .session
            .try_recover_opts(nl, cancel, backend, use_cache)?;
        let slot = Backend::ALL
            .iter()
            .position(|b| *b == rec.stats.backend)
            .expect("Backend::ALL covers every variant");
        self.served[slot].fetch_add(1, Ordering::Relaxed);
        Ok(rec)
    }

    /// Completed recoveries this version served with `backend`.
    pub fn served(&self, backend: Backend) -> u64 {
        let slot = Backend::ALL
            .iter()
            .position(|b| *b == backend)
            .expect("Backend::ALL covers every variant");
        self.served[slot].load(Ordering::Relaxed)
    }

    /// Completed recoveries this version served across all backends.
    pub fn served_total(&self) -> u64 {
        self.served.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Writes this version's cache to its persistence path. Returns
    /// `Ok(false)` when there is nothing to flush (no cache or no path).
    ///
    /// # Errors
    ///
    /// I/O failure writing the cache file.
    pub fn flush_cache(&self) -> std::io::Result<bool> {
        match (self.cache(), &self.cache_path) {
            (Some(cache), Some(path)) => cache.flush(path).map(|()| true),
            _ => Ok(false),
        }
    }
}

/// One named slot: the epoch pointer plus the per-name version counter.
#[derive(Debug)]
struct Slot {
    current: EpochArc<ResidentModel>,
    next_version: AtomicU64,
}

/// A map of model name → current resident version, with atomic hot swap
/// and deferred retirement.
///
/// * [`ModelRegistry::install`] publishes a new version for a name; a
///   name that already exists is *swapped* — in-flight requests pinned
///   to the old version finish on it untouched.
/// * The swapped-out version lands on the retired list;
///   [`ModelRegistry::reap`] flushes its score cache and drops it once
///   the last in-flight handle is gone (`Arc` refcount drains to the
///   list's own).
///
/// # Examples
///
/// ```
/// use rebert::{ReBertConfig, ReBertModel};
/// use rebert_registry::{ModelRegistry, RegistryConfig};
///
/// let registry = ModelRegistry::new(RegistryConfig { threads: 1, cache_bytes: 0, cache_dir: None });
/// let v1 = registry.install("default", ReBertModel::new(ReBertConfig::tiny(), 1));
/// let v2 = registry.install("default", ReBertModel::new(ReBertConfig::tiny(), 2));
/// assert_eq!((v1.version(), v2.version()), (1, 2));
/// assert_eq!(registry.get("default").unwrap().version(), 2);
/// drop(v1); // the last in-flight handle on v1 drains ...
/// assert_eq!(registry.reap(), 1, "... so v1 retires");
/// ```
#[derive(Debug)]
pub struct ModelRegistry {
    config: RegistryConfig,
    slots: Mutex<BTreeMap<String, Arc<Slot>>>,
    retired: Mutex<Vec<Arc<ResidentModel>>>,
    /// First installed name; `resolve(None)` falls back to it.
    default_name: Mutex<Option<String>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        ModelRegistry {
            config,
            slots: Mutex::new(BTreeMap::new(), "registry.slots"),
            retired: Mutex::new(Vec::new(), "registry.retired"),
            default_name: Mutex::new(None, "registry.default"),
        }
    }

    /// The shared resident knobs.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// The standard per-model cache file name,
    /// `score-cache-<fingerprint>.bin`.
    pub fn cache_file_name(fingerprint_hex: &str) -> String {
        format!("score-cache-{fingerprint_hex}.bin")
    }

    /// Publishes `model` under `name`, wiring up a warm int8 view and a
    /// per-fingerprint score cache (loaded from `cache_dir` when
    /// configured). Returns the new resident; if `name` was already
    /// resident the old version is atomically swapped out and queued
    /// for retirement.
    pub fn install(&self, name: &str, model: ReBertModel) -> Arc<ResidentModel> {
        let cache_path = self
            .config
            .cache_dir
            .as_ref()
            .map(|d| d.join(Self::cache_file_name(&model.fingerprint_hex())));
        let mut session = RecoverySession::new(model, self.config.threads);
        if self.config.cache_bytes > 0 {
            let fp = session.model().fingerprint();
            let cache = Arc::new(match &cache_path {
                Some(p) => ScoreCache::load_or_new(p, self.config.cache_bytes, fp),
                None => ScoreCache::new(self.config.cache_bytes, fp),
            });
            session.attach_cache(cache);
        }
        self.adopt(name, session, cache_path)
    }

    /// Like [`ModelRegistry::install`] but takes a ready-made session —
    /// the serving layer's adoption path for a session it configured
    /// itself (possibly with a cache already attached). `cache_path` is
    /// where this resident's cache flushes on retirement/shutdown.
    pub fn adopt(
        &self,
        name: &str,
        mut session: RecoverySession,
        cache_path: Option<PathBuf>,
    ) -> Arc<ResidentModel> {
        // Warm the quantized view before publication so the first int8
        // request on the new version pays no one-off quantization pass.
        session.model().int8_view();
        if session.cache().is_none() && self.config.cache_bytes > 0 {
            let fp = session.model().fingerprint();
            let cache = Arc::new(match &cache_path {
                Some(p) => ScoreCache::load_or_new(p, self.config.cache_bytes, fp),
                None => ScoreCache::new(self.config.cache_bytes, fp),
            });
            session.attach_cache(cache);
        }
        let fingerprint_hex = session.model().fingerprint_hex();

        let mut slots = self.slots.lock();
        let resident = match slots.get(name) {
            Some(slot) => {
                let version = slot.next_version.fetch_add(1, Ordering::SeqCst);
                let resident = Arc::new(ResidentModel {
                    name: name.to_owned(),
                    version,
                    fingerprint_hex,
                    session,
                    cache_path,
                    served: Default::default(),
                });
                let old = slot.current.swap(Arc::clone(&resident));
                obs::info!(
                    "registry",
                    "model `{name}` v{version} published ({}), v{} retiring",
                    resident.fingerprint_hex,
                    old.version
                );
                self.retired.lock().push(old);
                resident
            }
            None => {
                let resident = Arc::new(ResidentModel {
                    name: name.to_owned(),
                    version: 1,
                    fingerprint_hex,
                    session,
                    cache_path,
                    served: Default::default(),
                });
                slots.insert(
                    name.to_owned(),
                    Arc::new(Slot {
                        current: EpochArc::new(Arc::clone(&resident)),
                        next_version: AtomicU64::new(2),
                    }),
                );
                let mut default = self.default_name.lock();
                if default.is_none() {
                    *default = Some(name.to_owned());
                }
                resident
            }
        };
        drop(slots);
        self.reap();
        resident
    }

    /// The current version under `name`, pinned: the returned handle
    /// stays valid (and bitwise-stable) across any number of swaps.
    pub fn get(&self, name: &str) -> Option<Arc<ResidentModel>> {
        let slot = self.slots.lock().get(name).cloned()?;
        Some(slot.current.load())
    }

    /// [`ModelRegistry::get`], falling back to the default model when
    /// `name` is `None`.
    pub fn resolve(&self, name: Option<&str>) -> Option<Arc<ResidentModel>> {
        match name {
            Some(n) => self.get(n),
            None => {
                let default = self.default_name.lock().clone()?;
                self.get(&default)
            }
        }
    }

    /// Resident model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.slots.lock().keys().cloned().collect()
    }

    /// The current version of every resident name, sorted by name.
    pub fn list(&self) -> Vec<Arc<ResidentModel>> {
        let slots: Vec<Arc<Slot>> = self.slots.lock().values().cloned().collect();
        slots.iter().map(|s| s.current.load()).collect()
    }

    /// Retired versions still waiting for in-flight handles to drain.
    pub fn retired_len(&self) -> usize {
        self.retired.lock().len()
    }

    /// Retires drained versions: any retired resident whose only
    /// remaining handle is the retired list itself has its score cache
    /// flushed to disk and its memory dropped. Returns how many were
    /// reclaimed. Cheap when nothing is retired; the serving executor
    /// calls this after every job.
    pub fn reap(&self) -> usize {
        let mut retired = self.retired.lock();
        let mut reclaimed = 0usize;
        retired.retain(|r| {
            // Once swapped out, no new handle can be minted (the slot
            // points elsewhere), so a count of 1 is a stable drain.
            if Arc::strong_count(r) == 1 {
                match r.flush_cache() {
                    Ok(true) => obs::info!(
                        "registry",
                        "retired `{}` v{}: cache flushed, memory dropped",
                        r.name(),
                        r.version()
                    ),
                    Ok(false) => {}
                    Err(e) => obs::warn!(
                        "registry",
                        "retired `{}` v{}: cache flush failed: {e}",
                        r.name(),
                        r.version()
                    ),
                }
                reclaimed += 1;
                false
            } else {
                true
            }
        });
        reclaimed
    }

    /// Flushes every resident *and* still-draining retired cache to
    /// disk — the shutdown path, where waiting for refcounts is not an
    /// option. Reaps drained retirees first so they flush-and-drop.
    pub fn flush_all(&self) {
        self.reap();
        for resident in self.list() {
            if let Err(e) = resident.flush_cache() {
                obs::warn!(
                    "registry",
                    "shutdown flush of `{}` v{} failed: {e}",
                    resident.name(),
                    resident.version()
                );
            }
        }
        for retired in self.retired.lock().iter() {
            if let Err(e) = retired.flush_cache() {
                obs::warn!(
                    "registry",
                    "shutdown flush of retired `{}` v{} failed: {e}",
                    retired.name(),
                    retired.version()
                );
            }
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use rebert::ReBertConfig;
    use rebert_circuits::{generate, Profile};

    fn tiny_registry(cache_bytes: usize, dir: Option<PathBuf>) -> ModelRegistry {
        ModelRegistry::new(RegistryConfig {
            threads: 1,
            cache_bytes,
            cache_dir: dir,
        })
    }

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rebert-registry-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn install_get_resolve_and_versions() {
        let reg = tiny_registry(0, None);
        assert!(reg.get(DEFAULT_MODEL).is_none());
        assert!(reg.resolve(None).is_none());
        let v1 = reg.install(DEFAULT_MODEL, ReBertModel::new(ReBertConfig::tiny(), 1));
        assert_eq!(v1.version(), 1);
        assert_eq!(v1.name(), DEFAULT_MODEL);
        assert_eq!(
            reg.resolve(None).unwrap().fingerprint_hex(),
            v1.fingerprint_hex()
        );
        let v2 = reg.install(DEFAULT_MODEL, ReBertModel::new(ReBertConfig::tiny(), 2));
        assert_eq!(v2.version(), 2);
        assert_ne!(v1.fingerprint_hex(), v2.fingerprint_hex());
        assert_eq!(reg.get(DEFAULT_MODEL).unwrap().version(), 2);
        // A second name gets its own version line; default stays first.
        let other = reg.install("lut", ReBertModel::new(ReBertConfig::tiny(), 3));
        assert_eq!(other.version(), 1);
        assert_eq!(reg.names(), vec!["default".to_owned(), "lut".to_owned()]);
        assert_eq!(reg.resolve(None).unwrap().name(), DEFAULT_MODEL);
        assert!(reg.resolve(Some("missing")).is_none());
        assert_eq!(reg.list().len(), 2);
    }

    #[test]
    fn swapped_out_version_serves_inflight_bitwise_then_retires() {
        let reg = tiny_registry(0, None);
        let c = generate(&Profile::new("demo", 90, 10, 3), 5);
        let v1 = reg.install(DEFAULT_MODEL, ReBertModel::new(ReBertConfig::tiny(), 1));
        let before = v1
            .try_recover_opts(&c.netlist, &CancelToken::new(), Backend::F32Scalar, true)
            .expect("recovers");
        // Pin the old version (an "in-flight request"), then swap.
        let pinned = reg.get(DEFAULT_MODEL).unwrap();
        let v2 = reg.install(DEFAULT_MODEL, ReBertModel::new(ReBertConfig::tiny(), 2));
        assert_eq!(reg.retired_len(), 1, "v1 awaits drain");
        assert_eq!(reg.reap(), 0, "pinned handle blocks retirement");
        let after = pinned
            .try_recover_opts(&c.netlist, &CancelToken::new(), Backend::F32Scalar, true)
            .expect("old version still serves");
        assert_eq!(after.assignment, before.assignment, "bitwise on old model");
        assert_eq!(pinned.fingerprint_hex(), v1.fingerprint_hex());
        assert_ne!(v2.fingerprint_hex(), v1.fingerprint_hex());
        assert!(pinned.served_total() >= 1);
        drop(pinned);
        drop(v1);
        assert_eq!(reg.reap(), 1, "drained version retires");
        assert_eq!(reg.retired_len(), 0);
    }

    #[test]
    fn retirement_flushes_the_per_fingerprint_cache_file() {
        let dir = tmp();
        let reg = tiny_registry(1 << 20, Some(dir.clone()));
        let c = generate(&Profile::new("demo", 80, 8, 2), 7);
        let v1 = reg.install(DEFAULT_MODEL, ReBertModel::new(ReBertConfig::tiny(), 1));
        let fp1 = v1.fingerprint_hex().to_owned();
        let _ = v1
            .try_recover_opts(&c.netlist, &CancelToken::new(), Backend::F32Scalar, true)
            .expect("recovers");
        assert!(!v1.cache().unwrap().is_empty(), "recovery populated cache");
        drop(v1);
        let _v2 = reg.install(DEFAULT_MODEL, ReBertModel::new(ReBertConfig::tiny(), 2));
        // install() reaps; v1 had drained, so its cache is on disk now.
        let path = dir.join(ModelRegistry::cache_file_name(&fp1));
        assert!(path.exists(), "retired cache flushed to {}", path.display());
        assert_eq!(reg.retired_len(), 0);
        // A reinstall of the same checkpoint warm-starts from that file.
        let v3 = reg.install("again", ReBertModel::new(ReBertConfig::tiny(), 1));
        assert!(!v3.cache().unwrap().is_empty(), "cache reloaded from disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_all_covers_residents_and_retirees() {
        let dir = tmp();
        let reg = tiny_registry(1 << 20, Some(dir.clone()));
        let c = generate(&Profile::new("demo", 80, 8, 2), 7);
        let v1 = reg.install(DEFAULT_MODEL, ReBertModel::new(ReBertConfig::tiny(), 1));
        let _ = v1
            .try_recover_opts(&c.netlist, &CancelToken::new(), Backend::F32Scalar, true)
            .unwrap();
        let v2 = reg.install(DEFAULT_MODEL, ReBertModel::new(ReBertConfig::tiny(), 2));
        let _ = v2
            .try_recover_opts(&c.netlist, &CancelToken::new(), Backend::F32Scalar, true)
            .unwrap();
        // v1 is still pinned (we hold it) — flush_all must cover it anyway.
        reg.flush_all();
        for fp in [v1.fingerprint_hex(), v2.fingerprint_hex()] {
            assert!(
                dir.join(ModelRegistry::cache_file_name(fp)).exists(),
                "missing flush for {fp}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_disabled_when_budget_is_zero() {
        let reg = tiny_registry(0, None);
        let v = reg.install(DEFAULT_MODEL, ReBertModel::new(ReBertConfig::tiny(), 1));
        assert!(v.cache().is_none());
        assert!(!v.flush_cache().expect("no-op flush"), "nothing to flush");
    }

    #[test]
    fn concurrent_swaps_and_recoveries_never_fail() {
        // The serving-path invariant behind the outage-free guarantee:
        // requests racing installs always land on *some* published
        // version and complete.
        let reg = Arc::new(tiny_registry(0, None));
        let c = Arc::new(generate(&Profile::new("demo", 80, 8, 2), 3));
        let fps: Vec<String> = (0..3)
            .map(|seed| ReBertModel::new(ReBertConfig::tiny(), seed).fingerprint_hex())
            .collect();
        reg.install(DEFAULT_MODEL, ReBertModel::new(ReBertConfig::tiny(), 0));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let c = Arc::clone(&c);
                let fps = fps.clone();
                std::thread::spawn(move || {
                    for _ in 0..12 {
                        let resident = reg.resolve(None).expect("always resident");
                        assert!(fps.contains(&resident.fingerprint_hex().to_owned()));
                        let rec = resident
                            .try_recover_opts(
                                &c.netlist,
                                &CancelToken::new(),
                                Backend::F32Scalar,
                                true,
                            )
                            .expect("never fails");
                        assert_eq!(rec.assignment.len(), 8);
                    }
                })
            })
            .collect();
        for round in 0..6u64 {
            let seed = round % 3;
            reg.install(DEFAULT_MODEL, ReBertModel::new(ReBertConfig::tiny(), seed));
            std::thread::yield_now();
        }
        for w in workers {
            w.join().expect("worker");
        }
        reg.reap();
        assert_eq!(reg.retired_len(), 0, "all old versions drained");
    }
}
