//! # rebert-registry
//!
//! A versioned registry of resident ReBERT checkpoints for the serving
//! layer. Each name maps to the *current version* of a model — an
//! immutable bundle of the [`rebert::ReBertModel`] (with its quantized
//! int8 view pre-warmed), the checkpoint fingerprint, and a per-version
//! [`rebert::ScoreCache`] persisted as `score-cache-<fingerprint>.bin`.
//!
//! Publication is an **atomic hot swap**: [`ModelRegistry::install`]
//! builds the new resident off to the side, then swaps an epoch pointer
//! ([`EpochArc`], a hand-rolled dependency-free `ArcSwap`). Requests
//! pin a version with [`ModelRegistry::get`]/[`resolve`] and keep
//! serving on it bitwise-unchanged while newer versions come and go;
//! the swapped-out version retires — score cache flushed to disk,
//! memory dropped — once its last in-flight handle drains
//! ([`ModelRegistry::reap`]).
//!
//! [`TenantQuotas`] rides along for the serving layer's per-tenant
//! token-bucket rate limiting (`--tenant-quota`, `X-Rebert-Tenant`,
//! `429 Too Many Requests`).
//!
//! [`resolve`]: ModelRegistry::resolve

#![warn(missing_docs)]

mod quota;
mod registry;
mod swap;

pub use quota::TenantQuotas;
pub use registry::{ModelRegistry, RegistryConfig, ResidentModel, DEFAULT_MODEL};
pub use swap::EpochArc;
