//! **Word recovery** — train a small ReBERT and recover words from an
//! unseen benchmark (the paper's core experiment in miniature).
//!
//! Trains on two generated benchmarks with R-Index augmentation, then
//! evaluates on a third it has never seen, reporting ARI and the
//! recovered word structure side by side with the ground truth.
//!
//! ```text
//! cargo run -p rebert-examples --release --bin word_recovery
//! ```

use rebert::{ari, train, training_samples, DatasetConfig, ReBertConfig, ReBertModel, TrainConfig};
use rebert_circuits::{generate, Profile};

fn main() {
    let seed = 0xC0DE;
    // Three small benchmarks with different word structures.
    let train_a = generate(&Profile::new("train_a", 150, 24, 5), seed);
    let train_b = generate(&Profile::new("train_b", 180, 30, 6), seed + 1);
    let test = generate(&Profile::new("unseen", 160, 24, 5), seed + 2);

    let mut mcfg = ReBertConfig::small();
    mcfg.k_levels = 4;
    let mut dcfg = DatasetConfig::for_model(&mcfg);
    dcfg.r_indexes = vec![0.0, 0.4, 0.8];
    dcfg.max_per_circuit = 600;

    let samples = training_samples(&[&train_a, &train_b], &dcfg, seed);
    println!("training on {} balanced pair samples…", samples.len());
    let mut model = ReBertModel::new(mcfg, seed);
    let report = train(
        &mut model,
        &samples,
        &TrainConfig {
            epochs: 8,
            lr: 1e-3,
            batch_size: 16,
            seed,
            weight_decay: 0.01,
            warmup_frac: 0.1,
        },
    );
    println!(
        "trained: losses {:?}, train accuracy {:.3}",
        report
            .epoch_losses
            .iter()
            .map(|l| format!("{l:.3}"))
            .collect::<Vec<_>>(),
        report.final_accuracy
    );

    let recovered = model.recover_words(&test.netlist);
    let truth = test.labels.assignment();
    println!(
        "\nunseen benchmark `{}`: {} bits, {} true words",
        test.netlist.name(),
        truth.len(),
        test.labels.word_count()
    );
    println!("ARI = {:.3}", ari(&truth, &recovered.assignment));
    println!("ground truth : {:?}", test.labels.words());
    println!("recovered    : {:?}", recovered.words());
}
