//! **Baseline comparison** — why structural matching breaks.
//!
//! Shows the structural baseline's similarity scores on a clean register
//! file, then applies a single equivalence-preserving gate replacement
//! (the paper's `NAND → OR(NOT, NOT)` example) and shows the similarity
//! collapse — the failure mode ReBERT's learned representation avoids.
//!
//! ```text
//! cargo run -p rebert-examples --bin baseline_comparison
//! ```

use rebert::ari;
use rebert_circuits::{corrupt, generate, Profile};
use rebert_netlist::{binarize, parse_bench, BitTree};
use rebert_structural::{recover_words, tree_similarity, StructuralConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Micro view: one pair of bits ---------------------------------
    let clean = parse_bench(
        "pair",
        "\
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
d0 = NAND(a, b)
d1 = NAND(c, d)
q0 = DFF(d0)
q1 = DFF(d1)
OUTPUT(q0)
",
    )?;
    let (bin, _) = binarize(&clean);
    let t0 = BitTree::extract(&bin, bin.bits()[0], 6);
    let t1 = BitTree::extract(&bin, bin.bits()[1], 6);
    println!(
        "clean pair  NAND(a,b) vs NAND(c,d):        similarity = {:.2}",
        tree_similarity(&t0, &t1)
    );

    // The paper's §III-A.1 example: A = NAND(B, C) → A = OR(NOT(B), NOT(C)).
    let replaced = parse_bench(
        "pair_r",
        "\
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
d0 = NAND(a, b)
nc = NOT(c)
nd = NOT(d)
d1 = OR(nc, nd)
q0 = DFF(d0)
q1 = DFF(d1)
OUTPUT(q0)
",
    )?;
    let (bin_r, _) = binarize(&replaced);
    let r0 = BitTree::extract(&bin_r, bin_r.bits()[0], 6);
    let r1 = BitTree::extract(&bin_r, bin_r.bits()[1], 6);
    println!(
        "replaced    NAND(a,b) vs OR(NOT c, NOT d): similarity = {:.2}  (same function!)",
        tree_similarity(&r0, &r1)
    );

    // --- Macro view: a whole benchmark across R-Index ------------------
    let circuit = generate(&Profile::new("demo", 200, 32, 6), 99);
    let truth = circuit.labels.assignment();
    let cfg = StructuralConfig {
        k_levels: 4,
        ..Default::default()
    };
    println!("\nstructural ARI on a 32-bit benchmark:");
    for r in [0.0, 0.3, 0.6, 1.0] {
        let netlist = if r == 0.0 {
            circuit.netlist.clone()
        } else {
            corrupt(&circuit.netlist, r, 5).0
        };
        let rec = recover_words(&netlist, &cfg);
        println!(
            "  R-Index {r:.1}: ARI {:>6.3}  (threshold used {:.3}, {} pairs)",
            ari(&truth, &rec.assignment),
            rec.stats.threshold_used,
            rec.stats.pairs
        );
    }
    Ok(())
}
