//! Seeded `rebert lint-src` violations, one per code, at pinned lines.
//! CI and the CLI tests assert these exact (code, line) pairs:
//!   raw-sync-primitive          line 10
//!   relaxed-publication-store   line 13
//!   lock-result-unwrap          line 17
//!   static-mut                  line 20
//! plus: the suppressed violation on line 23 must NOT be reported.
//! Never compiled — data for the lint walker only (walkers skip
//! `fixtures/`, so this file cannot fail the clean-workspace gate).
use std::sync::Mutex;

fn publish(flag: &std::sync::atomic::AtomicBool) {
    flag.store(true, std::sync::atomic::Ordering::Relaxed);
}

fn request_path(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

static mut SCRATCH: [u8; 4] = [0; 4];

// fixture for the suppression path — rebert-lint: allow(raw-sync-primitive)
use std::sync::Condvar;
