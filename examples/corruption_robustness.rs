//! **Corruption robustness** — the paper's central claim in one plot.
//!
//! Sweeps R-Index from 0 to 1 on a single benchmark and prints the ARI
//! series of the structural baseline vs a (lightly) trained ReBERT —
//! the Table II row structure as an ASCII chart.
//!
//! ```text
//! cargo run -p rebert-examples --release --bin corruption_robustness
//! ```

use rebert::{ari, train, training_samples, DatasetConfig, ReBertConfig, ReBertModel, TrainConfig};
use rebert_circuits::{corrupt, generate, Profile};
use rebert_structural::{recover_words, StructuralConfig};

fn bar(v: f64) -> String {
    let width = (v.max(0.0) * 40.0).round() as usize;
    "█".repeat(width)
}

fn main() {
    let train_a = generate(&Profile::new("train_a", 150, 24, 5), 11);
    let train_b = generate(&Profile::new("train_b", 180, 30, 6), 12);
    let test = generate(&Profile::new("target", 160, 24, 5), 13);

    let mut mcfg = ReBertConfig::small();
    mcfg.k_levels = 4;
    let mut dcfg = DatasetConfig::for_model(&mcfg);
    dcfg.r_indexes = vec![0.0, 0.4, 0.8];
    dcfg.max_per_circuit = 600;
    let samples = training_samples(&[&train_a, &train_b], &dcfg, 14);
    let mut model = ReBertModel::new(mcfg, 15);
    println!("training on {} samples…", samples.len());
    train(
        &mut model,
        &samples,
        &TrainConfig {
            epochs: 8,
            lr: 1e-3,
            batch_size: 16,
            seed: 16,
            weight_decay: 0.01,
            warmup_frac: 0.1,
        },
    );

    let scfg = StructuralConfig {
        k_levels: 4,
        ..Default::default()
    };
    let truth = test.labels.assignment();
    println!("\nR-Index   Structural  ReBERT");
    for r in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let netlist = if r == 0.0 {
            test.netlist.clone()
        } else {
            corrupt(&test.netlist, r, 17).0
        };
        let s = ari(&truth, &recover_words(&netlist, &scfg).assignment);
        let b = ari(&truth, &model.recover_words(&netlist).assignment);
        println!("{r:>6.1}    {s:>9.3}  {b:>6.3}");
        println!("          S {}", bar(s));
        println!("          R {}", bar(b));
    }
    println!("\nThe paper's finding: the structural method collapses at mid R-Index");
    println!("(patterns half-corrupted) while ReBERT degrades gracefully.");
}
