//! **Quickstart** — the whole ReBERT pipeline on a hand-written netlist.
//!
//! Walks through the paper's Fig. 1 stages on a tiny circuit: parsing,
//! binarization, tokenization (Fig. 2), tree positional codes (Fig. 3),
//! Jaccard filtering, pairwise prediction, and word generation.
//!
//! ```text
//! cargo run -p rebert-examples --bin quickstart
//! ```

use rebert::{jaccard, tokenize_bit, tree_codes, ReBertConfig, ReBertModel};
use rebert_netlist::{binarize, parse_bench, BitTree};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-bit loadable register plus one unrelated status bit.
    let src = "\
INPUT(load)
INPUT(d0)
INPUT(d1)
INPUT(d2)
INPUT(d3)
INPUT(err)
n0 = MUX(load, q0, d0)
n1 = MUX(load, q1, d1)
n2 = MUX(load, q2, d2)
n3 = MUX(load, q3, d3)
ne = AND(err, q0)
q0 = DFF(n0)
q1 = DFF(n1)
q2 = DFF(n2)
q3 = DFF(n3)
qe = DFF(ne)
OUTPUT(q3)
OUTPUT(qe)
";
    let nl = parse_bench("quickstart", src)?;
    println!(
        "parsed `{}`: {} gates, {} flip-flops ({} bits)",
        nl.name(),
        nl.gate_count(),
        nl.dff_count(),
        nl.bits().len()
    );

    // --- Tokenization (paper Fig. 2) -----------------------------------
    let (bin, stats) = binarize(&nl);
    println!(
        "binarized: {} MUX gates expanded, {} gates added",
        stats.muxes_expanded, stats.gates_added
    );
    let bits = bin.bits();
    let tree0 = BitTree::extract(&bin, bits[0], 6);
    let tokens0 = tokenize_bit(&tree0);
    let pretty: Vec<String> = tokens0.iter().map(|t| t.to_string()).collect();
    println!("bit 0 pre-order tokens: {}", pretty.join(" "));

    // --- Tree positional codes (paper Fig. 3) --------------------------
    let codes0 = tree_codes(&tree0, 8);
    println!("bit 0 root code: {:?}", &codes0[0]);
    println!("bit 0 first-child code: {:?}", &codes0[1]);

    // --- Jaccard pre-filter (paper §II-C) -------------------------------
    let tree4 = BitTree::extract(&bin, bits[4], 6);
    let tokens4 = tokenize_bit(&tree4);
    let tree1 = BitTree::extract(&bin, bits[1], 6);
    let tokens1 = tokenize_bit(&tree1);
    println!(
        "Jaccard(bit0, bit1) = {:.2}  (same register — passes the 0.7 filter)",
        jaccard(&tokens0, &tokens1)
    );
    println!(
        "Jaccard(bit0, bit4) = {:.2}  (status bit — filtered out)",
        jaccard(&tokens0, &tokens4)
    );

    // --- Pairwise prediction + word generation --------------------------
    // An untrained model demonstrates the mechanics; `word_recovery`
    // shows a trained one.
    let model = ReBertModel::new(ReBertConfig::tiny(), 42);
    let recovered = model.recover_words(&nl);
    println!(
        "pipeline stats: {} pairs, {} filtered, {} scored, {:?}",
        recovered.stats.pairs_total,
        recovered.stats.pairs_filtered,
        recovered.stats.pairs_scored,
        recovered.stats.elapsed
    );
    for (wi, word) in recovered.words().iter().enumerate() {
        let names: Vec<&str> = word.iter().map(|&b| nl.net_name(nl.bits()[b])).collect();
        println!("word {wi}: bits {word:?} ({})", names.join(", "));
    }
    Ok(())
}
