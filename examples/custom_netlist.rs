//! **Custom netlist** — bring your own design, persist a trained model.
//!
//! Demonstrates the intended downstream workflow: build or parse your own
//! gate-level netlist, train once, save the checkpoint, and reuse it later
//! for recovery on new designs.
//!
//! ```text
//! cargo run -p rebert-examples --release --bin custom_netlist
//! ```

use rebert::{
    load_model, save_model, train, training_samples, DatasetConfig, ReBertConfig, ReBertModel,
    TrainConfig,
};
use rebert_circuits::{generate, Profile};
use rebert_netlist::{parse_bench, write_bench, GateType, Netlist};

/// Builds a small design programmatically: a 3-bit counter and a 3-bit
/// shift register sharing a control input.
fn build_custom_design() -> Netlist {
    let mut nl = Netlist::new("custom");
    let en = nl.add_input("en");
    let sin = nl.add_input("sin");
    // Counter: c_d[i] = c_q[i] XOR carry; carry chains through ANDs.
    let cq: Vec<_> = (0..3).map(|i| nl.add_net(format!("c_q{i}"))).collect();
    let mut carry = en;
    for (i, &q) in cq.iter().enumerate() {
        let d = nl
            .add_gate_new_net(GateType::Xor, vec![q, carry], format!("c_d{i}"))
            .expect("fresh net");
        if i < 2 {
            carry = nl
                .add_gate_new_net(GateType::And, vec![carry, q], format!("c_cy{i}"))
                .expect("fresh net");
        }
        nl.add_dff(d, q).expect("q undriven");
    }
    // Shift register: s_d[0] = MUX(en, s_q0, sin); s_d[i] = MUX(en, s_qi, s_q(i-1)).
    let sq: Vec<_> = (0..3).map(|i| nl.add_net(format!("s_q{i}"))).collect();
    for i in 0..3 {
        let src = if i == 0 { sin } else { sq[i - 1] };
        let d = nl
            .add_gate_new_net(GateType::Mux, vec![en, sq[i], src], format!("s_d{i}"))
            .expect("fresh net");
        nl.add_dff(d, sq[i]).expect("q undriven");
    }
    nl.add_output(cq[2]);
    nl.add_output(sq[2]);
    nl
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Author a design in code, round-trip it through the text format.
    let design = build_custom_design();
    let text = write_bench(&design);
    println!("--- custom design (.bench dialect) ---\n{text}");
    let reparsed = parse_bench("custom", &text)?;
    assert_eq!(reparsed.dff_count(), design.dff_count());

    // 2. Train a compact model on generated data.
    let train_a = generate(&Profile::new("corpus_a", 150, 24, 5), 31);
    let train_b = generate(&Profile::new("corpus_b", 180, 30, 6), 32);
    let mut mcfg = ReBertConfig::small();
    mcfg.k_levels = 4;
    let mut dcfg = DatasetConfig::for_model(&mcfg);
    dcfg.r_indexes = vec![0.0, 0.5];
    dcfg.max_per_circuit = 400;
    let samples = training_samples(&[&train_a, &train_b], &dcfg, 33);
    let mut model = ReBertModel::new(mcfg, 34);
    println!("training on {} samples…", samples.len());
    train(
        &mut model,
        &samples,
        &TrainConfig {
            epochs: 6,
            lr: 1e-3,
            batch_size: 16,
            seed: 35,
            weight_decay: 0.01,
            warmup_frac: 0.1,
        },
    );

    // 3. Persist and reload the checkpoint.
    let path = std::env::temp_dir().join("rebert_custom_model.json");
    save_model(&model, &path)?;
    let reloaded = load_model(&path)?;
    println!("checkpoint saved to {} and reloaded", path.display());

    // 4. Recover words from the custom design.
    let recovered = reloaded.recover_words(&reparsed);
    println!("\nrecovered words on `custom` (truth: counter {{0,1,2}}, shifter {{3,4,5}}):");
    for (wi, word) in recovered.words().iter().enumerate() {
        let names: Vec<&str> = word
            .iter()
            .map(|&b| reparsed.net_name(reparsed.bits()[b]))
            .collect();
        println!("  word {wi}: {names:?}");
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
