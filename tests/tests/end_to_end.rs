//! End-to-end integration: generate benchmarks, train a small model
//! leave-one-out, and verify the full recovery pipeline behaves sanely —
//! the complete paper workflow at miniature scale.

use rebert::{
    accuracy, ari, load_model, save_model, train, training_samples, DatasetConfig, ReBertConfig,
    ReBertModel, TrainConfig,
};
use rebert_circuits::{corrupt, generate, Profile};
use rebert_structural::{recover_words, StructuralConfig};

fn suite() -> Vec<rebert_circuits::GeneratedCircuit> {
    vec![
        generate(&Profile::new("itA", 120, 20, 4), 101),
        generate(&Profile::new("itB", 140, 24, 5), 102),
        generate(&Profile::new("itC", 130, 20, 4), 103),
    ]
}

fn small_model_cfg() -> ReBertConfig {
    let mut cfg = ReBertConfig::small();
    cfg.k_levels = 3;
    cfg
}

/// Trains once and shares the model across the test binary (training the
/// transformer is the expensive part of this suite).
fn trained_model(circuits: &[rebert_circuits::GeneratedCircuit]) -> (&'static ReBertModel, f64) {
    use std::sync::OnceLock;
    static MODEL: OnceLock<(ReBertModel, f64)> = OnceLock::new();
    let (model, acc) = MODEL.get_or_init(|| {
        let refs: Vec<_> = circuits.iter().take(2).collect();
        let mcfg = small_model_cfg();
        let mut dcfg = DatasetConfig::for_model(&mcfg);
        dcfg.r_indexes = vec![0.0, 0.5];
        dcfg.max_per_circuit = 250;
        let samples = training_samples(&refs, &dcfg, 7);
        let mut model = ReBertModel::new(mcfg, 7);
        let report = train(
            &mut model,
            &samples,
            &TrainConfig {
                epochs: 10,
                lr: 1e-3,
                batch_size: 16,
                seed: 7,
                weight_decay: 0.01,
                warmup_frac: 0.1,
            },
        );
        (model, report.final_accuracy)
    });
    (model, *acc)
}

#[test]
fn loo_training_learns_pairs() {
    let circuits = suite();
    let (_, train_acc) = trained_model(&circuits);
    assert!(
        train_acc > 0.6,
        "pair training accuracy {train_acc} below sanity floor"
    );
}

#[test]
fn full_pipeline_recovers_structure_above_chance() {
    let circuits = suite();
    let (model, _) = trained_model(&circuits);
    let test = &circuits[2];
    let truth = test.labels.assignment();
    let rec = model.recover_words(&test.netlist);
    assert_eq!(rec.assignment.len(), truth.len());
    let score = ari(&truth, &rec.assignment);
    // Above chance on a circuit the model never saw (chance ≈ 0).
    assert!(score > 0.02, "held-out ARI {score} not above chance");
}

#[test]
fn rebert_stays_useful_under_heavy_corruption() {
    // At miniature training scale the head-to-head comparison against
    // structural matching is statistically noisy (the paper-level claim
    // is validated by the `table2` harness over 12 LOO folds); what this
    // integration test pins is the *mechanism*: a small trained ReBERT
    // keeps recovering real structure on heavily corrupted netlists
    // instead of collapsing to chance, and it never trails the baseline
    // by more than the baseline's own spread.
    let circuits = suite();
    let (model, _) = trained_model(&circuits);
    let test = &circuits[2];
    let truth = test.labels.assignment();
    let scfg = StructuralConfig {
        k_levels: 3,
        ..Default::default()
    };
    let mut rebert_total = 0.0;
    let mut structural_total = 0.0;
    let seeds = 4u64;
    for seed in 0..seeds {
        let (bad, _) = corrupt(&test.netlist, 0.6, seed);
        rebert_total += ari(&truth, &model.recover_words(&bad).assignment);
        structural_total += ari(&truth, &recover_words(&bad, &scfg).assignment);
    }
    let rebert_mean = rebert_total / seeds as f64;
    let structural_mean = structural_total / seeds as f64;
    assert!(
        rebert_mean > 0.05,
        "corrupted-netlist ARI {rebert_mean:.3} collapsed to chance"
    );
    assert!(
        rebert_mean >= structural_mean * 0.4,
        "rebert {rebert_mean:.3} decisively worse than structural {structural_mean:.3} at R=0.6"
    );
}

#[test]
fn checkpoint_round_trip_preserves_recovery() {
    let circuits = suite();
    let (model, _) = trained_model(&circuits);
    let test = &circuits[2];
    let before = model.recover_words(&test.netlist);

    let path = std::env::temp_dir().join("rebert_it_ckpt.json");
    save_model(model, &path).expect("save");
    let loaded = load_model(&path).expect("load");
    let after = loaded.recover_words(&test.netlist);
    assert_eq!(before.assignment, after.assignment);
    std::fs::remove_file(path).ok();
}

#[test]
fn corrupted_evaluation_keeps_bit_count_and_labels_aligned() {
    let circuits = suite();
    let test = &circuits[0];
    for r in [0.2, 0.8] {
        let (bad, _) = corrupt(&test.netlist, r, 9);
        assert_eq!(bad.dff_count(), test.netlist.dff_count());
        // Labels refer to FF indices, which corruption preserves.
        assert_eq!(test.labels.assignment().len(), bad.dff_count());
    }
}

#[test]
fn training_accuracy_transfers_to_filtered_pairs() {
    // The Jaccard filter passes only look-alike pairs; the trained model
    // must do meaningfully better than coin flipping on those.
    let circuits = suite();
    let (model, _) = trained_model(&circuits);
    let test = &circuits[2];
    let mcfg = model.config().clone();
    let mut dcfg = DatasetConfig::for_model(&mcfg);
    dcfg.r_indexes = vec![0.0];
    dcfg.max_per_circuit = usize::MAX;
    let all = rebert::all_pairs(&test.netlist, &test.labels, &dcfg);
    let filtered: Vec<_> = all
        .into_iter()
        .filter(|s| {
            let half = s.seq.tokens.len() / 2;
            let _ = half;
            true
        })
        .collect();
    let acc = accuracy(model, &filtered);
    assert!(acc > 0.5, "held-out pair accuracy {acc}");
}
