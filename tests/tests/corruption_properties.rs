//! Property-based tests of the corruption engine and binarization over
//! randomly generated netlists: both transformations must preserve the
//! circuit function exactly, on every input pattern.

use proptest::prelude::*;
use rebert_circuits::corrupt;
use rebert_integration_tests::{build_netlist, NetlistRecipe};
use rebert_netlist::binarize;

fn recipe_strategy() -> impl Strategy<Value = NetlistRecipe> {
    (
        1usize..=6,
        prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u8>(), 1..=3)),
            1..=20,
        ),
        prop::collection::vec(any::<u8>(), 1..=6),
    )
        .prop_map(|(n_inputs, gates, ff_sources)| NetlistRecipe {
            n_inputs,
            gates,
            ff_sources,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_recipes_build_valid_netlists(recipe in recipe_strategy()) {
        let nl = build_netlist(&recipe);
        prop_assert!(nl.validate().is_ok());
        prop_assert_eq!(nl.dff_count(), recipe.ff_sources.len());
    }

    #[test]
    fn corruption_preserves_function(
        recipe in recipe_strategy(),
        r in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let nl = build_netlist(&recipe);
        let (bad, stats) = corrupt(&nl, r, seed);
        prop_assert!(bad.validate().is_ok());
        prop_assert_eq!(stats.visited, nl.gate_count());
        rebert_integration_tests::assert_functionally_equal(&nl, &bad, 6);
    }

    #[test]
    fn binarize_preserves_function(recipe in recipe_strategy()) {
        let nl = build_netlist(&recipe);
        let (bin, _) = binarize(&nl);
        prop_assert!(bin.validate().is_ok());
        prop_assert!(bin.gates().iter().all(|g| g.inputs.len() <= 2));
        rebert_integration_tests::assert_functionally_equal(&nl, &bin, 6);
    }

    #[test]
    fn corrupt_then_binarize_preserves_function(
        recipe in recipe_strategy(),
        seed in any::<u64>(),
    ) {
        // The exact composition the evaluation pipeline applies.
        let nl = build_netlist(&recipe);
        let (bad, _) = corrupt(&nl, 0.7, seed);
        let (bin, _) = binarize(&bad);
        rebert_integration_tests::assert_functionally_equal(&nl, &bin, 6);
    }

    #[test]
    fn corruption_never_touches_bits(
        recipe in recipe_strategy(),
        seed in any::<u64>(),
    ) {
        let nl = build_netlist(&recipe);
        let (bad, _) = corrupt(&nl, 1.0, seed);
        let names: Vec<&str> = nl.bits().iter().map(|&b| nl.net_name(b)).collect();
        let names_bad: Vec<&str> = bad.bits().iter().map(|&b| bad.net_name(b)).collect();
        prop_assert_eq!(names, names_bad);
    }

    #[test]
    fn r_zero_changes_nothing(recipe in recipe_strategy(), seed in any::<u64>()) {
        let nl = build_netlist(&recipe);
        let (same, stats) = corrupt(&nl, 0.0, seed);
        prop_assert_eq!(stats.replaced, 0);
        prop_assert_eq!(same.gate_count(), nl.gate_count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimize_preserves_function(recipe in recipe_strategy()) {
        let nl = build_netlist(&recipe);
        let (opt, _) = rebert_netlist::optimize(&nl);
        prop_assert!(opt.validate().is_ok());
        // Compare on primary outputs (optimization may remove internal nets).
        let n = nl.primary_inputs().len();
        let sim_a = rebert_netlist::Simulator::new(&nl).unwrap();
        let sim_b = rebert_netlist::Simulator::new(&opt).unwrap();
        let za = vec![false; nl.dff_count()];
        let zb = vec![false; opt.dff_count()];
        for row in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|j| (row >> j) & 1 == 1).collect();
            let va = sim_a.eval_combinational(&inputs, &za);
            let vb = sim_b.eval_combinational(&inputs, &zb);
            for (k, (&pa, &pb)) in nl
                .primary_outputs()
                .iter()
                .zip(opt.primary_outputs())
                .enumerate()
            {
                prop_assert_eq!(va[pa.index()], vb[pb.index()], "PO {} row {}", k, row);
            }
        }
    }

    #[test]
    fn optimize_never_grows_the_netlist(recipe in recipe_strategy()) {
        let nl = build_netlist(&recipe);
        let (opt, _) = rebert_netlist::optimize(&nl);
        prop_assert!(opt.gate_count() <= nl.gate_count());
    }

    #[test]
    fn corrupt_then_optimize_round_trip_equivalent(
        recipe in recipe_strategy(),
        seed in any::<u64>(),
    ) {
        // Corruption inflates, optimization deflates; function is fixed.
        let nl = build_netlist(&recipe);
        let (bad, _) = corrupt(&nl, 1.0, seed);
        let (opt, _) = rebert_netlist::optimize(&bad);
        let n = nl.primary_inputs().len();
        let sim_a = rebert_netlist::Simulator::new(&nl).unwrap();
        let sim_b = rebert_netlist::Simulator::new(&opt).unwrap();
        let za = vec![false; nl.dff_count()];
        let zb = vec![false; opt.dff_count()];
        for row in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|j| (row >> j) & 1 == 1).collect();
            let va = sim_a.eval_combinational(&inputs, &za);
            let vb = sim_b.eval_combinational(&inputs, &zb);
            for (&pa, &pb) in nl.primary_outputs().iter().zip(opt.primary_outputs()) {
                prop_assert_eq!(va[pa.index()], vb[pb.index()]);
            }
        }
    }
}
