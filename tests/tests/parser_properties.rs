//! Property-based round-trip tests of the `.bench` text format, over
//! both random recipes and the benchmark generator's output.

use proptest::prelude::*;
use rebert_circuits::{generate, Profile};
use rebert_integration_tests::{build_netlist, NetlistRecipe};
use rebert_netlist::{parse_bench, write_bench};

fn recipe_strategy() -> impl Strategy<Value = NetlistRecipe> {
    (
        1usize..=5,
        prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u8>(), 1..=3)),
            1..=15,
        ),
        prop::collection::vec(any::<u8>(), 0..=4),
    )
        .prop_map(|(n_inputs, gates, ff_sources)| NetlistRecipe {
            n_inputs,
            gates,
            ff_sources,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn write_parse_round_trip_preserves_structure(recipe in recipe_strategy()) {
        let nl = build_netlist(&recipe);
        let text = write_bench(&nl);
        let back = parse_bench(nl.name(), &text).expect("round trip parses");
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(back.gate_count(), nl.gate_count());
        prop_assert_eq!(back.dff_count(), nl.dff_count());
        prop_assert_eq!(back.primary_inputs().len(), nl.primary_inputs().len());
        prop_assert_eq!(back.primary_outputs().len(), nl.primary_outputs().len());
        // Same gate types per output net name.
        for g in nl.gates() {
            let name = nl.net_name(g.output);
            let id = back.find_net(name).expect("net survives");
            match back.driver(id) {
                rebert_netlist::Driver::Gate(gid) => {
                    prop_assert_eq!(back.gate(gid).gtype, g.gtype);
                }
                other => prop_assert!(false, "net `{}` driver {:?}", name, other),
            }
        }
    }

    #[test]
    fn round_trip_preserves_function(recipe in recipe_strategy()) {
        let nl = build_netlist(&recipe);
        let text = write_bench(&nl);
        let back = parse_bench(nl.name(), &text).expect("round trip parses");
        rebert_integration_tests::assert_functionally_equal(&nl, &back, 5);
    }

    #[test]
    fn generated_benchmarks_round_trip(seed in 0u64..64, ffs in 8usize..24) {
        let words = (ffs / 4).max(2);
        let c = generate(&Profile::new("prop", 60, ffs, words), seed);
        let text = write_bench(&c.netlist);
        let back = parse_bench("prop", &text).expect("generator output parses");
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(back.dff_count(), c.netlist.dff_count());
        prop_assert_eq!(back.gate_count(), c.netlist.gate_count());
    }
}
