//! Property-based tests of the metric and grouping layer: ARI axioms,
//! score-matrix symmetry, and grouping invariances.

use proptest::prelude::*;
use rebert::{ari, group_bits, group_bits_adaptive, jaccard, pair_scores, ScoreMatrix, Token};
use rebert_netlist::{GateType, ALL_GATE_TYPES};

fn assignment_strategy(n: usize, k: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..k, n)
}

fn token_seq_strategy() -> impl Strategy<Value = Vec<Token>> {
    prop::collection::vec(0usize..=ALL_GATE_TYPES.len(), 0..20).prop_map(|ids| {
        ids.into_iter()
            .map(|i| {
                if i == ALL_GATE_TYPES.len() {
                    Token::X
                } else {
                    Token::Gate(ALL_GATE_TYPES[i])
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ari_identity_axiom(assign in assignment_strategy(12, 4)) {
        prop_assert_eq!(ari(&assign, &assign), 1.0);
    }

    #[test]
    fn ari_symmetry(a in assignment_strategy(10, 3), b in assignment_strategy(10, 3)) {
        let lhs = ari(&a, &b);
        let rhs = ari(&b, &a);
        prop_assert!((lhs - rhs).abs() < 1e-9, "{} vs {}", lhs, rhs);
    }

    #[test]
    fn ari_relabeling_invariance(a in assignment_strategy(10, 3), b in assignment_strategy(10, 3)) {
        // Renaming cluster ids must not change the score.
        let relabeled: Vec<usize> = b.iter().map(|&x| 100 - x * 7).collect();
        let lhs = ari(&a, &b);
        let rhs = ari(&a, &relabeled);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn ari_bounded(a in assignment_strategy(9, 4), b in assignment_strategy(9, 4)) {
        let v = ari(&a, &b);
        prop_assert!((-1.0..=1.0 + 1e-12).contains(&v), "ari = {}", v);
    }

    #[test]
    fn pair_scores_bounded(a in assignment_strategy(8, 3), b in assignment_strategy(8, 3)) {
        let s = pair_scores(&a, &b);
        for v in [s.precision, s.recall, s.f1] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn jaccard_axioms(a in token_seq_strategy(), b in token_seq_strategy()) {
        let ab = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((jaccard(&b, &a) - ab).abs() < 1e-12, "symmetry");
        prop_assert_eq!(jaccard(&a, &a), 1.0, "identity");
    }

    #[test]
    fn score_matrix_symmetry(
        entries in prop::collection::vec((0usize..8, 0usize..8, 0.0f32..1.0), 0..24)
    ) {
        let mut m = ScoreMatrix::new(8);
        for (i, j, s) in entries {
            if i != j {
                m.set(i, j, s);
            }
        }
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    prop_assert_eq!(m.get(i, j), m.get(j, i));
                }
            }
        }
    }

    #[test]
    fn grouping_produces_dense_partition(
        entries in prop::collection::vec((0usize..10, 0usize..10, 0.0f32..1.0), 0..40),
        threshold in 0.0f32..1.0,
    ) {
        let mut m = ScoreMatrix::new(10);
        for (i, j, s) in entries {
            if i != j {
                m.set(i, j, s);
            }
        }
        let assign = group_bits(&m, threshold);
        prop_assert_eq!(assign.len(), 10);
        // Dense ids 0..k.
        let max = assign.iter().copied().max().unwrap_or(0);
        for w in 0..=max {
            prop_assert!(assign.contains(&w), "missing word id {}", w);
        }
        // Monotonicity: raising the threshold never merges more.
        let coarser = group_bits(&m, threshold * 0.5);
        let finer_words = assign.iter().collect::<std::collections::HashSet<_>>().len();
        let coarser_words = coarser.iter().collect::<std::collections::HashSet<_>>().len();
        prop_assert!(coarser_words <= finer_words);
    }

    #[test]
    fn adaptive_grouping_never_uses_negative_threshold(
        entries in prop::collection::vec((0usize..6, 0usize..6, 0.0f32..1.0), 0..10)
    ) {
        let mut m = ScoreMatrix::new(6);
        for (i, j, s) in entries {
            if i != j {
                m.set(i, j, s);
            }
        }
        // Must not panic, and filtered (−1) pairs must never join.
        let assign = group_bits_adaptive(&m);
        prop_assert_eq!(assign.len(), 6);
    }
}

#[test]
fn jaccard_gate_type_sanity() {
    // Deterministic anchor next to the property tests.
    let a = vec![Token::Gate(GateType::And); 3];
    let b = vec![Token::Gate(GateType::Or); 3];
    assert_eq!(jaccard(&a, &b), 0.0);
}
