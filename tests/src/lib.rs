//! Shared helpers for the cross-crate integration tests: random netlist
//! construction used by the property-based suites.

use rebert_netlist::{GateType, Netlist};

/// A compact, deterministic recipe for building a random-but-valid
/// netlist: used as the `proptest` value type (shrinkable), expanded into
/// a real [`Netlist`] by [`build_netlist`].
#[derive(Debug, Clone)]
pub struct NetlistRecipe {
    /// Number of primary inputs (≥ 1).
    pub n_inputs: usize,
    /// One entry per gate: `(gate type selector, input selectors)`.
    /// Selectors index into the set of already-created nets, modulo its
    /// size, so any recipe is structurally valid and acyclic.
    pub gates: Vec<(u8, Vec<u8>)>,
    /// Indices (modulo net count) of nets to register through flip-flops.
    pub ff_sources: Vec<u8>,
}

/// The gate types a recipe selector can choose from.
pub const RECIPE_GATES: [GateType; 8] = [
    GateType::And,
    GateType::Or,
    GateType::Nand,
    GateType::Nor,
    GateType::Xor,
    GateType::Xnor,
    GateType::Not,
    GateType::Buf,
];

/// Expands a recipe into a valid netlist (always validates).
pub fn build_netlist(recipe: &NetlistRecipe) -> Netlist {
    let mut nl = Netlist::new("random");
    let mut nets: Vec<_> = (0..recipe.n_inputs.max(1))
        .map(|i| nl.add_input(format!("in{i}")))
        .collect();
    for (gi, (gsel, insels)) in recipe.gates.iter().enumerate() {
        let gtype = RECIPE_GATES[*gsel as usize % RECIPE_GATES.len()];
        let arity = match gtype {
            GateType::Not | GateType::Buf => 1,
            _ => insels.len().clamp(2, 3),
        };
        let inputs: Vec<_> = (0..arity)
            .map(|k| {
                let sel = insels.get(k).copied().unwrap_or(k as u8);
                nets[sel as usize % nets.len()]
            })
            .collect();
        let out = nl
            .add_gate_new_net(gtype, inputs, format!("g{gi}"))
            .expect("recipe gates read existing nets and drive fresh ones");
        nets.push(out);
    }
    for (fi, sel) in recipe.ff_sources.iter().enumerate() {
        let d = nets[*sel as usize % nets.len()];
        let q = nl.add_net(format!("q{fi}"));
        nl.add_dff(d, q).expect("fresh q net");
    }
    // Observe the last net so nothing is trivially dead.
    if let Some(&last) = nets.last() {
        nl.add_output(last);
    }
    nl
}

/// Exhaustively compares two netlists on all shared (non-internal) nets
/// over every primary-input pattern and a zero FF state. Panics on the
/// first mismatch; caller guarantees ≤ `max_inputs` PIs.
pub fn assert_functionally_equal(a: &Netlist, b: &Netlist, max_inputs: usize) {
    use rebert_netlist::Simulator;
    assert_eq!(a.primary_inputs().len(), b.primary_inputs().len());
    let n = a.primary_inputs().len();
    assert!(n <= max_inputs, "too many inputs for exhaustive check");
    let sim_a = Simulator::new(a).expect("acyclic");
    let sim_b = Simulator::new(b).expect("acyclic");
    let sa = vec![false; a.dff_count()];
    let sb = vec![false; b.dff_count()];
    for row in 0..(1u32 << n) {
        let inputs: Vec<bool> = (0..n).map(|j| (row >> j) & 1 == 1).collect();
        let va = sim_a.eval_combinational(&inputs, &sa);
        let vb = sim_b.eval_combinational(&inputs, &sb);
        for (id_a, name) in a.iter_nets() {
            if name.starts_with("__") {
                continue;
            }
            if let Some(id_b) = b.find_net(name) {
                assert_eq!(
                    va[id_a.index()],
                    vb[id_b.index()],
                    "net `{name}` differs on pattern {row:b}"
                );
            }
        }
    }
}
